"""Exporters: Prometheus text exposition, JSON snapshots, periodic scraping.

A :class:`repro.obs.metrics.MetricsRegistry` is process-local state; this
module turns it into files other tools read:

* :func:`prometheus_text` renders the standard text exposition format —
  ``# HELP``/``# TYPE`` headers, labelled sample lines, cumulative
  ``_bucket{le=...}`` series plus ``_sum``/``_count`` for histograms.
  :func:`parse_prometheus_text` inverts it exactly: parsing the exposition
  of a registry reproduces its :meth:`snapshot` bit for bit (tested), so
  the text format is a lossless transport, not just a display.
* :func:`write_json_snapshot` / :func:`read_json_snapshot` persist the raw
  snapshot dict (atomic write via temp file + rename, so a scraper never
  reads a half-written file).
* :class:`PeriodicScraper` is the hook long-running loops call once per
  round: it rewrites the exposition file at most every ``interval_s``
  seconds, turning any loop into a Prometheus scrape target backed by a
  plain file.
* :func:`text_report` is the human-facing dump for notebooks and CLI runs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.utils.validation import ValidationError


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label(value: str) -> str:
    out = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
            else:
                out.append(nxt)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _format_number(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_str(labels: dict, extra: list | None = None) -> str:
    pairs = [(str(k), str(v)) for k, v in sorted(labels.items())]
    if extra:
        pairs.extend(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _resolve_snapshot(registry_or_snapshot) -> dict:
    if isinstance(registry_or_snapshot, MetricsRegistry):
        return registry_or_snapshot.snapshot()
    if isinstance(registry_or_snapshot, dict):
        return registry_or_snapshot
    raise ValidationError(
        "expected a MetricsRegistry or a snapshot dict, "
        f"got {type(registry_or_snapshot).__name__}"
    )


def prometheus_text(registry_or_snapshot=None) -> str:
    """Render a registry (or snapshot) in Prometheus text exposition format.

    Counters and gauges become one sample line per label set; histograms
    become cumulative ``<name>_bucket{le="..."}`` series (the overflow
    bucket is ``le="+Inf"``) plus ``<name>_sum`` and ``<name>_count``.
    Instruments keep their registered names verbatim — the repo's
    convention is to name counters ``*_total`` at registration, so the
    exposition needs no suffix rewriting and stays invertible.

    A histogram with *zero* observations still emits one explicit
    unlabelled all-zero bucket series (plus ``_sum 0`` / ``_count 0``) so
    its bucket bounds survive the round trip;
    :func:`parse_prometheus_text` recognises and drops that synthetic
    series, keeping the exposition exactly invertible.
    """
    snap = _resolve_snapshot(
        get_registry() if registry_or_snapshot is None else registry_or_snapshot
    )
    lines = []
    for name in sorted(snap.get("counters", {})):
        entry = snap["counters"][name]
        lines.append(f"# HELP {name} {entry.get('help', '')}".rstrip())
        lines.append(f"# TYPE {name} counter")
        for cell in entry["values"]:
            lines.append(f"{name}{_label_str(cell['labels'])} {_format_number(cell['value'])}")
    for name in sorted(snap.get("gauges", {})):
        entry = snap["gauges"][name]
        lines.append(f"# HELP {name} {entry.get('help', '')}".rstrip())
        lines.append(f"# TYPE {name} gauge")
        for cell in entry["values"]:
            lines.append(f"{name}{_label_str(cell['labels'])} {_format_number(cell['value'])}")
    for name in sorted(snap.get("histograms", {})):
        entry = snap["histograms"][name]
        bounds = entry["buckets"]
        lines.append(f"# HELP {name} {entry.get('help', '')}".rstrip())
        lines.append(f"# TYPE {name} histogram")
        for cell in entry["values"]:
            cumulative = 0
            for bound, count in zip(bounds, cell["counts"]):
                cumulative += count
                label = _label_str(cell["labels"], extra=[("le", _format_number(bound))])
                lines.append(f"{name}_bucket{label} {cumulative}")
            cumulative += cell["counts"][-1]
            label = _label_str(cell["labels"], extra=[("le", "+Inf")])
            lines.append(f"{name}_bucket{label} {cumulative}")
            lines.append(f"{name}_sum{_label_str(cell['labels'])} {_format_number(cell['sum'])}")
            lines.append(f"{name}_count{_label_str(cell['labels'])} {cell['count']}")
        if not entry["values"]:
            # Zero observations: emit an explicit all-zero unlabelled series so
            # the bucket bounds survive parse_prometheus_text (which drops it).
            for bound in bounds:
                label = _label_str({}, extra=[("le", _format_number(bound))])
                lines.append(f"{name}_bucket{label} 0")
            lines.append(f'{name}_bucket{{le="+Inf"}} 0')
            lines.append(f"{name}_sum 0")
            lines.append(f"{name}_count 0")
    return "\n".join(lines) + ("\n" if lines else "")


def _parse_labels(body: str) -> dict:
    labels = {}
    i = 0
    while i < len(body):
        eq = body.index("=", i)
        key = body[i:eq].strip()
        if body[eq + 1] != '"':
            raise ValidationError(f"malformed label value near {body[eq:]!r}")
        j = eq + 2
        raw = []
        while j < len(body):
            ch = body[j]
            if ch == "\\":
                raw.append(body[j : j + 2])
                j += 2
                continue
            if ch == '"':
                break
            raw.append(ch)
            j += 1
        labels[key] = _unescape_label("".join(raw))
        i = j + 1
        if i < len(body) and body[i] == ",":
            i += 1
    return labels


def _parse_value(token: str) -> float:
    if token == "+Inf":
        return float("inf")
    if token == "-Inf":
        return float("-inf")
    return float(token)


def _split_sample(line: str) -> tuple[str, dict, float]:
    if "{" in line:
        name, rest = line.split("{", 1)
        body, value_part = rest.rsplit("}", 1)
        return name, _parse_labels(body), _parse_value(value_part.strip())
    name, value_part = line.split(None, 1)
    return name, {}, _parse_value(value_part.strip())


def parse_prometheus_text(text: str) -> dict:
    """Parse text exposition back into a registry snapshot dict.

    This is the exact inverse of :func:`prometheus_text` for expositions it
    produced: cumulative bucket series are differenced back to per-bucket
    counts and the ``+Inf`` bucket becomes the overflow cell, so
    ``parse_prometheus_text(prometheus_text(reg)) == reg.snapshot()``
    with no caveat: the explicit all-zero unlabelled series a
    zero-observation histogram emits is recognised as the bounds carrier
    (its bounds are kept, the synthetic cell is not appended to
    ``values``).  Live registries never produce a real all-zero cell —
    histogram cells only come into existence on ``observe()`` — so the
    synthetic series is unambiguous.
    """
    snap = {"counters": {}, "gauges": {}, "histograms": {}}
    kinds = {}
    # First pass: HELP/TYPE headers declare every instrument, populated or not.
    for line in text.splitlines():
        line = line.strip()
        if line.startswith("# HELP "):
            _, _, rest = line.split(" ", 2)
            name, _, help_text = rest.partition(" ")
            kinds.setdefault(name, {})["help"] = help_text
        elif line.startswith("# TYPE "):
            _, _, rest = line.split(" ", 2)
            name, _, kind = rest.partition(" ")
            kinds.setdefault(name, {})["kind"] = kind.strip()
    for name, meta in kinds.items():
        kind = meta.get("kind")
        help_text = meta.get("help", "")
        if kind == "counter":
            snap["counters"][name] = {"help": help_text, "values": []}
        elif kind == "gauge":
            snap["gauges"][name] = {"help": help_text, "values": []}
        elif kind == "histogram":
            snap["histograms"][name] = {"help": help_text, "buckets": [], "values": []}
    # Second pass: sample lines.  Histogram cells accumulate bucket bounds and
    # cumulative counts per label set, differenced at the end.
    hist_cells: dict[str, dict] = {name: {} for name in snap["histograms"]}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, labels, value = _split_sample(line)
        base = None
        for candidate in snap["histograms"]:
            if name in (f"{candidate}_bucket", f"{candidate}_sum", f"{candidate}_count"):
                base = candidate
                break
        if base is not None:
            cell_labels = {k: v for k, v in labels.items() if not (name.endswith("_bucket") and k == "le")}
            key = tuple(sorted(cell_labels.items()))
            cell = hist_cells[base].setdefault(
                key, {"labels": cell_labels, "bounds": [], "cumulative": [], "sum": 0.0, "count": 0}
            )
            if name.endswith("_bucket"):
                bound = labels["le"]
                cell["bounds"].append(bound)
                cell["cumulative"].append(value)
            elif name.endswith("_sum"):
                cell["sum"] = value
            else:
                cell["count"] = int(value)
        elif name in snap["counters"]:
            snap["counters"][name]["values"].append({"labels": labels, "value": value})
        elif name in snap["gauges"]:
            snap["gauges"][name]["values"].append({"labels": labels, "value": value})
        else:
            raise ValidationError(f"sample line for undeclared metric: {line!r}")
    for name, cells in hist_cells.items():
        for _, cell in sorted(cells.items()):
            finite = [b for b in cell["bounds"] if b != "+Inf"]
            bounds = [float(b) for b in finite]
            if not snap["histograms"][name]["buckets"]:
                snap["histograms"][name]["buckets"] = bounds
            counts = []
            previous = 0.0
            for cumulative in cell["cumulative"]:
                counts.append(int(cumulative - previous))
                previous = cumulative
            if (
                not cell["labels"]
                and cell["count"] == 0
                and cell["sum"] == 0.0
                and not any(counts)
            ):
                # The synthetic bounds carrier of a zero-observation
                # histogram: keep its bounds, don't materialise a cell.
                continue
            snap["histograms"][name]["values"].append(
                {
                    "labels": cell["labels"],
                    "counts": counts,
                    "sum": cell["sum"],
                    "count": cell["count"],
                }
            )
    return snap


def write_json_snapshot(path: str | Path, registry_or_snapshot=None) -> Path:
    """Write a snapshot as JSON, atomically (temp file + rename)."""
    snap = _resolve_snapshot(
        get_registry() if registry_or_snapshot is None else registry_or_snapshot
    )
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(snap, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    os.replace(tmp, path)
    return path


def read_json_snapshot(path: str | Path) -> dict:
    """Load a snapshot written by :func:`write_json_snapshot`."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


class PeriodicScraper:
    """Rewrites an exposition file at most every ``interval_s`` seconds.

    Long-running loops (``MonitorService`` rounds, explorer iterations) call
    :meth:`maybe_scrape` once per iteration; the file is refreshed only when
    the interval has elapsed, so the hook is cheap enough for hot loops.
    Call :meth:`scrape` directly for an unconditional flush (e.g. at
    shutdown).  ``fmt`` selects Prometheus text exposition (default) or the
    raw JSON snapshot.
    """

    def __init__(
        self,
        path: str | Path,
        registry: MetricsRegistry | None = None,
        interval_s: float = 10.0,
        fmt: str = "prometheus",
    ):
        if fmt not in ("prometheus", "json"):
            raise ValidationError(f"fmt must be 'prometheus' or 'json', got {fmt!r}")
        if interval_s < 0:
            raise ValidationError("interval_s must be non-negative")
        self.path = Path(path)
        self.registry = registry
        self.interval_s = float(interval_s)
        self.fmt = fmt
        self.scrapes = 0
        self._last_scrape: float | None = None

    def _registry(self) -> MetricsRegistry:
        return self.registry if self.registry is not None else get_registry()

    def scrape(self) -> Path:
        """Write the exposition file now, unconditionally."""
        registry = self._registry()
        if self.fmt == "json":
            write_json_snapshot(self.path, registry)
        else:
            tmp = self.path.with_name(self.path.name + ".tmp")
            tmp.write_text(prometheus_text(registry), encoding="utf-8")
            os.replace(tmp, self.path)
        self.scrapes += 1
        self._last_scrape = time.monotonic()
        return self.path

    def maybe_scrape(self, now: float | None = None) -> bool:
        """Scrape if ``interval_s`` has elapsed since the last one.

        Returns whether a scrape happened.  ``now`` (a ``time.monotonic``
        value) is injectable for tests.
        """
        current = time.monotonic() if now is None else now
        if self._last_scrape is not None and current - self._last_scrape < self.interval_s:
            return False
        registry = self._registry()
        if self.fmt == "json":
            write_json_snapshot(self.path, registry)
        else:
            tmp = self.path.with_name(self.path.name + ".tmp")
            tmp.write_text(prometheus_text(registry), encoding="utf-8")
            os.replace(tmp, self.path)
        self.scrapes += 1
        self._last_scrape = current
        return True


def text_report(registry_or_snapshot=None) -> str:
    """Human-readable metrics dump for notebooks and CLI output."""
    snap = _resolve_snapshot(
        get_registry() if registry_or_snapshot is None else registry_or_snapshot
    )
    lines = ["metrics report"]
    for kind in ("counters", "gauges"):
        for name in sorted(snap.get(kind, {})):
            entry = snap[kind][name]
            if not entry["values"]:
                continue
            lines.append(f"  {name} ({kind[:-1]})")
            for cell in entry["values"]:
                label = _label_str(cell["labels"]) or "{}"
                lines.append(f"    {label} = {_format_number(cell['value'])}")
    for name in sorted(snap.get("histograms", {})):
        entry = snap["histograms"][name]
        if not entry["values"]:
            continue
        lines.append(f"  {name} (histogram)")
        for cell in entry["values"]:
            label = _label_str(cell["labels"]) or "{}"
            mean = cell["sum"] / cell["count"] if cell["count"] else float("nan")
            lines.append(
                f"    {label}: count={cell['count']} sum={cell['sum']:.6f} mean={mean:.6f}"
            )
    return "\n".join(lines)


__all__ = [
    "PeriodicScraper",
    "parse_prometheus_text",
    "prometheus_text",
    "read_json_snapshot",
    "text_report",
    "write_json_snapshot",
]
