"""`repro.obs`: unified metrics, tracing, and export across every layer.

One telemetry vocabulary for the whole reproduction — synthesis sessions,
batch runners, the explorer, the fleet simulator, and the always-on
monitoring service all record into the same process-local
:class:`MetricsRegistry` and :class:`Tracer`:

* :mod:`repro.obs.metrics` — labelled counters, gauges, and fixed-bucket
  histograms with a near-zero disabled path, plus ``snapshot()``/``merge()``
  so multiprocessing workers ship their registries home with result rows;
* :mod:`repro.obs.trace` — nested ``span(name, **labels)`` blocks with
  wall/CPU durations, crash-tolerant JSONL export, and text tree /
  folded-stack flamegraph renderings;
* :mod:`repro.obs.export` — Prometheus text exposition (losslessly
  parseable back into a snapshot), atomic JSON snapshot files, and a
  :class:`PeriodicScraper` hook for long-running loops;
* :mod:`repro.obs.clock` — the :class:`Stopwatch` every other layer uses
  for elapsed-time reporting and solver time budgets, keeping direct
  wall-clock reads confined to ``repro.obs`` (lint rule ``REP001`` in
  :mod:`repro.lint`);
* :mod:`repro.obs.watch` — self-monitoring: the repo's own CUSUM
  detectors watch its benchmark trajectory (``BENCH_*.json``) and live
  registry snapshots for regressions (``python -m repro.obs.watch``).

The ``watch`` names (``BenchHistory``, ``SeriesWatcher``,
``HealthWatcher``, ``WatchSpec``, ``RegressionEvent``, ...) are
re-exported lazily via module ``__getattr__``: ``repro.obs.watch`` pulls
in the detector cores from :mod:`repro.runtime`, which itself imports
``repro.obs`` — deferring the import keeps the package cycle-free.

Everything is opt-in: the default registry and tracer start disabled
(``REPRO_METRICS=1`` / ``REPRO_TRACE=<path>`` environment variables or
:func:`enable_metrics` / :func:`enable_tracing` turn them on), and the
disabled path is cheap enough to leave compiled into hot loops — the fleet
benchmark gate runs with instrumentation present.
"""

from repro.obs.clock import Stopwatch
from repro.obs.export import (
    PeriodicScraper,
    parse_prometheus_text,
    prometheus_text,
    read_json_snapshot,
    text_report,
    write_json_snapshot,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_registry,
    metrics_enabled,
    timed,
    use_registry,
)
from repro.obs.trace import (
    SpanRecord,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
    use_tracer,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PeriodicScraper",
    "SpanRecord",
    "Stopwatch",
    "Tracer",
    "disable_metrics",
    "disable_tracing",
    "enable_metrics",
    "enable_tracing",
    "get_registry",
    "get_tracer",
    "metrics_enabled",
    "parse_prometheus_text",
    "prometheus_text",
    "read_json_snapshot",
    "span",
    "text_report",
    "timed",
    "use_registry",
    "use_tracer",
    "write_json_snapshot",
]

#: Names resolved lazily from :mod:`repro.obs.watch` (see module docstring).
_WATCH_EXPORTS = frozenset(
    {
        "Baseline",
        "BenchHistory",
        "BenchRecord",
        "BenchSeries",
        "HealthWatcher",
        "RegressionEvent",
        "SeriesWatcher",
        "WatchPolicy",
        "WatchSpec",
        "estimate_baseline",
        "orientation_for",
    }
)


def __getattr__(name: str):
    """Lazy re-export of the ``repro.obs.watch`` surface (PEP 562)."""
    if name in _WATCH_EXPORTS:
        from repro.obs import watch

        return getattr(watch, name)
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
