"""Nested spans: where does a pipeline, fleet run or serve round spend time.

A :class:`Tracer` records a tree of *spans* — named ``with`` blocks carrying
wall-clock and CPU durations plus string labels.  Spans nest naturally
(``with span("pipeline.synthesis"): ... with span("synthesis.solve"): ...``),
and each completed span is appended to an in-memory list and, when a path is
configured, to a crash-tolerant JSONL stream with the same recovery contract
as :class:`repro.serve.log.ServiceLog`: a truncated trailing line (the
signature of a process killed mid-append) is dropped on read, interior
corruption raises.

Two text renderings answer the common questions directly:

* :meth:`Tracer.tree` — the call tree with per-span wall/CPU durations, for
  "where did this one run spend its time";
* :meth:`Tracer.flamegraph` — folded-stack lines (``a;b;c <wall_s> <count>``,
  the format flamegraph tooling consumes), aggregated over repeated paths,
  for "what dominates across many rounds".

Like metrics, tracing is opt-in: the module-level default tracer starts
disabled (enable with :func:`enable_tracing` or by pointing the
``REPRO_TRACE`` environment variable at an output path), and a disabled
:func:`span` yields without recording anything.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

from repro.utils.validation import ValidationError


@dataclass
class SpanRecord:
    """One completed span of a trace.

    Attributes
    ----------
    span_id / parent_id:
        Position in the span tree (ids are assigned at span *open*, so a
        parent's id is always smaller than its children's; ``parent_id`` is
        ``None`` for root spans).
    name:
        The span's dotted name (``"pipeline.synthesis"``).
    labels:
        String labels attached at open (algorithm, backend, ...).
    depth:
        Nesting depth (0 for roots).
    start_s:
        Wall-clock offset from the tracer's epoch at open.
    wall_s / cpu_s:
        Wall-clock and process-CPU duration of the block.
    """

    span_id: int
    parent_id: int | None
    name: str
    labels: dict = field(default_factory=dict)
    depth: int = 0
    start_s: float = 0.0
    wall_s: float = 0.0
    cpu_s: float = 0.0

    def to_dict(self) -> dict:
        """Plain-data representation (JSON-compatible)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "labels": dict(self.labels),
            "depth": self.depth,
            "start_s": self.start_s,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpanRecord":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            span_id=int(data["span_id"]),
            parent_id=None if data.get("parent_id") is None else int(data["parent_id"]),
            name=str(data["name"]),
            labels=dict(data.get("labels", {})),
            depth=int(data.get("depth", 0)),
            start_s=float(data.get("start_s", 0.0)),
            wall_s=float(data.get("wall_s", 0.0)),
            cpu_s=float(data.get("cpu_s", 0.0)),
        )


class Tracer:
    """Records nested spans, in memory and optionally as JSONL.

    Parameters
    ----------
    enabled:
        Whether :meth:`span` records anything; a disabled tracer's span is a
        bare ``yield``.
    path:
        Optional JSONL file completed spans are appended to (created on the
        first span).
    flush_every:
        Flush the OS buffer every this-many appended spans (default 1 — a
        killed process leaves at most one partial line); ``0`` defers
        flushing to :meth:`close`.

    The span stack is thread-local: concurrent threads each build their own
    branch of the tree (records from all threads land in one ordered list).
    Records are appended at span *close*, so a child precedes its parent in
    :attr:`records` — :meth:`tree` reorders via ``parent_id``.
    """

    def __init__(self, enabled: bool = True, path: str | Path | None = None, flush_every: int = 1):
        self.enabled = bool(enabled)
        self.path = None if path is None else Path(path)
        self.flush_every = int(flush_every)
        if self.flush_every < 0:
            raise ValidationError("flush_every must be non-negative")
        self.records: list[SpanRecord] = []
        self._epoch = time.perf_counter()
        self._next_id = 0
        self._local = threading.local()
        self._handle = None
        self._since_flush = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def enable(self) -> "Tracer":
        """Turn span recording on; returns the tracer for chaining."""
        self.enabled = True
        return self

    def disable(self) -> "Tracer":
        """Turn span recording off (recorded spans stay)."""
        self.enabled = False
        return self

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **labels):
        """Record one named block; yields the :class:`SpanRecord` (or ``None``).

        Labels are coerced to strings (they feed metric-style grouping, not
        arbitrary payloads).  The record's durations are filled in when the
        block exits, exceptions included — a span that raises still lands in
        the trace with its time.
        """
        if not self.enabled:
            yield None
            return
        stack = self._stack()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        record = SpanRecord(
            span_id=span_id,
            parent_id=stack[-1].span_id if stack else None,
            name=str(name),
            labels={str(k): str(v) for k, v in labels.items()},
            depth=len(stack),
            start_s=time.perf_counter() - self._epoch,
        )
        stack.append(record)
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        try:
            yield record
        finally:
            record.wall_s = time.perf_counter() - wall0
            record.cpu_s = time.process_time() - cpu0
            stack.pop()
            with self._lock:
                self.records.append(record)
                self._write(record)

    def _write(self, record: SpanRecord) -> None:
        if self.path is None:
            return
        if self._handle is None:
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(json.dumps(record.to_dict()) + "\n")
        self._since_flush += 1
        if self.flush_every and self._since_flush >= self.flush_every:
            self._handle.flush()
            self._since_flush = 0

    def close(self) -> None:
        """Flush and close the backing file (in-memory records stay)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def clear(self) -> None:
        """Drop every in-memory record (the JSONL file is untouched)."""
        self.records.clear()

    # ------------------------------------------------------------------
    @staticmethod
    def read(path: str | Path) -> list[SpanRecord]:
        """Load a recorded JSONL trace back into :class:`SpanRecord` objects.

        A corrupt *trailing* line is dropped silently (process killed
        mid-append); corrupt interior lines raise — the same contract as
        :meth:`repro.serve.log.ServiceLog.read`.
        """
        lines = [
            line
            for line in Path(path).read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
        records = []
        for position, line in enumerate(lines):
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                if position == len(lines) - 1:
                    break
                raise
            records.append(SpanRecord.from_dict(data))
        return records

    # ------------------------------------------------------------------
    def _children(self) -> dict[int | None, list[SpanRecord]]:
        children: dict[int | None, list[SpanRecord]] = {}
        for record in self.records:
            children.setdefault(record.parent_id, []).append(record)
        for siblings in children.values():
            siblings.sort(key=lambda r: r.span_id)
        return children

    def tree(self) -> str:
        """The span tree as indented text with per-span wall/CPU durations."""
        children = self._children()
        lines = ["span tree (wall s / cpu s)"]

        def render(record: SpanRecord) -> None:
            labels = ""
            if record.labels:
                labels = " {" + ", ".join(f"{k}={v}" for k, v in sorted(record.labels.items())) + "}"
            lines.append(
                f"{'  ' * record.depth}- {record.name}{labels}: "
                f"{record.wall_s:.4f}s wall, {record.cpu_s:.4f}s cpu"
            )
            for child in children.get(record.span_id, []):
                render(child)

        for root in children.get(None, []):
            render(root)
        return "\n".join(lines)

    def flamegraph(self) -> str:
        """Folded-stack lines: ``root;child;leaf <total_wall_s> <count>``.

        Repeated paths aggregate (every CEGIS round's ``synthesis.solve``
        folds into one line), and the output is sorted by descending total
        wall time — feed it to standard flamegraph tooling or read the top
        lines directly.
        """
        by_id = {record.span_id: record for record in self.records}
        totals: dict[str, list[float]] = {}
        for record in self.records:
            parts = [record.name]
            cursor = record
            while cursor.parent_id is not None:
                cursor = by_id[cursor.parent_id]
                parts.append(cursor.name)
            path = ";".join(reversed(parts))
            entry = totals.setdefault(path, [0.0, 0])
            entry[0] += record.wall_s
            entry[1] += 1
        lines = [
            f"{path} {wall:.6f} {count}"
            for path, (wall, count) in sorted(
                totals.items(), key=lambda item: -item[1][0]
            )
        ]
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The process-wide default tracer.
# ----------------------------------------------------------------------
def _env_tracer() -> Tracer:
    path = os.environ.get("REPRO_TRACE", "").strip()
    if path:
        return Tracer(enabled=True, path=path)
    return Tracer(enabled=False)


_default_tracer = _env_tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer instrumented layers record into."""
    return _default_tracer


def enable_tracing(path: str | Path | None = None) -> Tracer:
    """Enable the default tracer, optionally (re)pointing it at a JSONL path."""
    if path is not None:
        _default_tracer.close()
        _default_tracer.path = Path(path)
    return _default_tracer.enable()


def disable_tracing() -> Tracer:
    """Disable the default tracer; recorded spans are kept."""
    return _default_tracer.disable()


@contextmanager
def span(name: str, **labels):
    """Record one span on the process-wide default tracer."""
    with _default_tracer.span(name, **labels) as record:
        yield record


@contextmanager
def use_tracer(tracer: Tracer):
    """Temporarily make ``tracer`` the process default (see ``use_registry``)."""
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer
    try:
        yield tracer
    finally:
        _default_tracer = previous


__all__ = [
    "SpanRecord",
    "Tracer",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "span",
    "use_tracer",
]
