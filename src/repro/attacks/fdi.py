"""False-data-injection attack representation.

An :class:`FDIAttack` is simply a matrix ``a`` of shape ``(T, m)``: the value
added to the sensor vector at each of the ``T`` sampling instances.  The class
adds channel masking (the paper's attacker can only forge the CAN-carried
sensors, not the hard-wired wheel-speed sensors), norm accounting and slicing
utilities used by the synthesis algorithms and the evaluation code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import ValidationError


@dataclass(frozen=True)
class AttackChannelMask:
    """Which measurement channels an attacker can falsify.

    Attributes
    ----------
    n_outputs:
        Total number of measurement channels ``m``.
    attackable:
        Indices of channels the attacker controls.  Channels outside this set
        are constrained to zero injection by the synthesis encodings.
    """

    n_outputs: int
    attackable: tuple[int, ...]

    def __post_init__(self) -> None:
        n = int(self.n_outputs)
        if n <= 0:
            raise ValidationError("n_outputs must be positive")
        indices = tuple(sorted(set(int(i) for i in self.attackable)))
        for index in indices:
            if not 0 <= index < n:
                raise ValidationError(f"channel index {index} out of range [0, {n})")
        object.__setattr__(self, "n_outputs", n)
        object.__setattr__(self, "attackable", indices)

    @classmethod
    def all_channels(cls, n_outputs: int) -> "AttackChannelMask":
        """Attacker controls every measurement channel."""
        return cls(n_outputs=n_outputs, attackable=tuple(range(int(n_outputs))))

    @classmethod
    def none(cls, n_outputs: int) -> "AttackChannelMask":
        """Attacker controls no channel (used for nominal runs)."""
        return cls(n_outputs=n_outputs, attackable=())

    @property
    def protected(self) -> tuple[int, ...]:
        """Indices of channels the attacker cannot touch."""
        return tuple(i for i in range(self.n_outputs) if i not in self.attackable)

    def as_bool_array(self) -> np.ndarray:
        """Boolean vector, True where the channel is attackable."""
        mask = np.zeros(self.n_outputs, dtype=bool)
        for index in self.attackable:
            mask[index] = True
        return mask

    def project(self, values: np.ndarray) -> np.ndarray:
        """Zero out the protected channels of an attack matrix or vector."""
        values = np.asarray(values, dtype=float)
        mask = self.as_bool_array()
        return values * mask


@dataclass(frozen=True)
class FDIAttack:
    """A concrete false-data-injection attack sequence.

    Attributes
    ----------
    values:
        Array of shape ``(T, m)``: ``values[k]`` is added to the measurement
        at the ``(k+1)``-th sampling instance.
    mask:
        Channel mask the attack respects (validated at construction).
    metadata:
        Free-form provenance (synthesis round, solver backend, ...).
    """

    values: np.ndarray
    mask: AttackChannelMask | None = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        values = np.atleast_2d(np.asarray(self.values, dtype=float))
        if values.ndim != 2:
            raise ValidationError("attack values must be a (T, m) matrix")
        if self.mask is not None:
            if values.shape[1] != self.mask.n_outputs:
                raise ValidationError(
                    f"attack has {values.shape[1]} channels, mask expects {self.mask.n_outputs}"
                )
            violation = np.abs(values[:, list(self.mask.protected)])
            if violation.size and np.max(violation) > 1e-12:
                raise ValidationError("attack injects data on protected channels")
        object.__setattr__(self, "values", values)

    # ------------------------------------------------------------------
    @property
    def horizon(self) -> int:
        """Number of attacked sampling instances ``T``."""
        return self.values.shape[0]

    @property
    def n_outputs(self) -> int:
        """Number of measurement channels ``m``."""
        return self.values.shape[1]

    def magnitude(self, order: float | str = 2) -> float:
        """Total attack effort: sum over samples of ``||a_k||``."""
        if order == "inf":
            per_sample = np.max(np.abs(self.values), axis=1)
        else:
            per_sample = np.linalg.norm(self.values, ord=order, axis=1)
        return float(np.sum(per_sample))

    def peak(self) -> float:
        """Largest absolute injected value over the whole attack."""
        if self.values.size == 0:
            return 0.0
        return float(np.max(np.abs(self.values)))

    def support(self, tol: float = 1e-12) -> np.ndarray:
        """Indices of sampling instances where a non-zero injection occurs."""
        return np.flatnonzero(np.max(np.abs(self.values), axis=1) > tol)

    def is_zero(self, tol: float = 1e-12) -> bool:
        """True when the attack injects (numerically) nothing."""
        return self.peak() <= tol

    def truncated(self, horizon: int) -> "FDIAttack":
        """Attack restricted to the first ``horizon`` samples."""
        horizon = int(horizon)
        if not 0 < horizon <= self.horizon:
            raise ValidationError(
                f"truncation horizon must be in (0, {self.horizon}], got {horizon}"
            )
        return FDIAttack(self.values[:horizon].copy(), mask=self.mask, metadata=dict(self.metadata))

    def scaled(self, factor: float) -> "FDIAttack":
        """Attack with every injected value multiplied by ``factor``."""
        return FDIAttack(self.values * float(factor), mask=self.mask, metadata=dict(self.metadata))

    @classmethod
    def zeros(cls, horizon: int, n_outputs: int, mask: AttackChannelMask | None = None) -> "FDIAttack":
        """The all-zero (no-op) attack."""
        return cls(np.zeros((int(horizon), int(n_outputs))), mask=mask)
