"""Attack injection glue between attack objects and the simulator."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.fdi import FDIAttack
from repro.attacks.templates import AttackTemplate
from repro.lti.simulate import (
    ClosedLoopSystem,
    SimulationOptions,
    SimulationTrace,
    simulate_closed_loop,
)
from repro.utils.validation import ValidationError


@dataclass
class AttackInjector:
    """Runs a closed-loop simulation under a chosen attack.

    This wrapper exists so examples and evaluation code can treat concrete
    :class:`~repro.attacks.fdi.FDIAttack` sequences and parametric
    :class:`~repro.attacks.templates.AttackTemplate` objects uniformly.
    """

    system: ClosedLoopSystem

    def resolve(self, attack, horizon: int) -> FDIAttack:
        """Turn ``attack`` (None / FDIAttack / AttackTemplate / array) into an FDIAttack."""
        m = self.system.n_outputs
        if attack is None:
            return FDIAttack.zeros(horizon, m)
        if isinstance(attack, FDIAttack):
            if attack.horizon < horizon:
                padded = np.zeros((horizon, m))
                padded[: attack.horizon] = attack.values
                return FDIAttack(padded, mask=attack.mask, metadata=dict(attack.metadata))
            if attack.horizon > horizon:
                return attack.truncated(horizon)
            return attack
        if isinstance(attack, AttackTemplate):
            return attack.generate(horizon, m)
        values = np.atleast_2d(np.asarray(attack, dtype=float))
        if values.shape != (horizon, m):
            raise ValidationError(
                f"raw attack array must have shape {(horizon, m)}, got {values.shape}"
            )
        return FDIAttack(values)

    def run(
        self,
        attack,
        options: SimulationOptions,
        process_noise: np.ndarray | None = None,
        measurement_noise: np.ndarray | None = None,
    ) -> SimulationTrace:
        """Simulate the closed loop under ``attack`` with the given options."""
        resolved = self.resolve(attack, options.horizon)
        return simulate_closed_loop(
            self.system,
            options,
            attack=resolved.values,
            process_noise=process_noise,
            measurement_noise=measurement_noise,
        )

    def compare(
        self,
        attack,
        options: SimulationOptions,
    ) -> tuple[SimulationTrace, SimulationTrace]:
        """Simulate the same scenario with and without the attack.

        Both runs share the same noise realisation so the difference between
        the two traces isolates the attack's effect.
        """
        resolved = self.resolve(attack, options.horizon)
        baseline = simulate_closed_loop(self.system, options)
        attacked = simulate_closed_loop(
            self.system,
            options,
            attack=resolved.values,
            process_noise=baseline.process_noise,
            measurement_noise=baseline.measurement_noise,
        )
        return baseline, attacked
