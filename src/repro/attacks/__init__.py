"""Attack models for false-data injection on sensor channels.

The primary artefact is :class:`~repro.attacks.fdi.FDIAttack` — an arbitrary
per-sample additive falsification of the measurement vector, which is exactly
what Algorithm 1 synthesizes.  The catalogue of parametric templates
(bias, ramp, surge, geometric, replay) reproduces the attack families used in
the residue-detector literature the paper cites and powers the examples and
the detector-evaluation benchmarks.
"""

from repro.attacks.fdi import FDIAttack, AttackChannelMask
from repro.attacks.templates import (
    AttackTemplate,
    BiasAttack,
    RampAttack,
    SurgeAttack,
    GeometricAttack,
    ReplayAttack,
    NoAttack,
)
from repro.attacks.injector import AttackInjector

__all__ = [
    "FDIAttack",
    "AttackChannelMask",
    "AttackTemplate",
    "BiasAttack",
    "RampAttack",
    "SurgeAttack",
    "GeometricAttack",
    "ReplayAttack",
    "NoAttack",
    "AttackInjector",
]
