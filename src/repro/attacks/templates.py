"""Parametric attack templates from the residue-detector literature.

These templates generate :class:`~repro.attacks.fdi.FDIAttack` sequences from
a handful of parameters.  They serve three purposes:

* realistic adversaries for the examples, for detector evaluation, and for
  the fleet runtime's attack scheduler,
* sanity baselines to compare against the formally synthesized attacks
  (a solver-found attack should be at least as damaging per unit effort),
* stress inputs for the property-based tests of the detection pipeline.

Each template is registered in :data:`repro.registry.ATTACK_TEMPLATES`
(``none``, ``bias``, ``ramp``, ``surge``, ``geometric``, ``replay``) so
declarative configs (:class:`~repro.api.config.RuntimeConfig`) can schedule
them by name.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.attacks.fdi import AttackChannelMask, FDIAttack
from repro.registry import ATTACK_TEMPLATES
from repro.utils.validation import ValidationError, check_positive


class AttackTemplate(abc.ABC):
    """A parametric generator of FDI attack sequences."""

    @abc.abstractmethod
    def generate(self, horizon: int, n_outputs: int) -> FDIAttack:
        """Materialise the attack for a given horizon and output dimension."""

    def _resolve_mask(self, n_outputs: int) -> AttackChannelMask:
        mask = getattr(self, "mask", None)
        if mask is None:
            return AttackChannelMask.all_channels(n_outputs)
        if mask.n_outputs != n_outputs:
            raise ValidationError(
                f"mask is for {mask.n_outputs} outputs, attack target has {n_outputs}"
            )
        return mask


@ATTACK_TEMPLATES.register("none")
@dataclass(frozen=True)
class NoAttack(AttackTemplate):
    """The trivial template: no injection at all."""

    def generate(self, horizon: int, n_outputs: int) -> FDIAttack:
        return FDIAttack.zeros(horizon, n_outputs)


@ATTACK_TEMPLATES.register("bias")
@dataclass(frozen=True)
class BiasAttack(AttackTemplate):
    """Constant bias added to the attackable channels from ``start`` onward."""

    bias: float
    start: int = 0
    mask: AttackChannelMask | None = None

    def generate(self, horizon: int, n_outputs: int) -> FDIAttack:
        horizon = int(check_positive("horizon", horizon))
        mask = self._resolve_mask(n_outputs)
        values = np.zeros((horizon, n_outputs))
        start = int(np.clip(self.start, 0, horizon))
        values[start:, list(mask.attackable)] = self.bias
        return FDIAttack(values, mask=mask, metadata={"template": "bias", "bias": self.bias})


@ATTACK_TEMPLATES.register("ramp")
@dataclass(frozen=True)
class RampAttack(AttackTemplate):
    """Linearly growing injection: ``a_k = slope * (k - start)`` for ``k >= start``."""

    slope: float
    start: int = 0
    mask: AttackChannelMask | None = None

    def generate(self, horizon: int, n_outputs: int) -> FDIAttack:
        horizon = int(check_positive("horizon", horizon))
        mask = self._resolve_mask(n_outputs)
        values = np.zeros((horizon, n_outputs))
        start = int(np.clip(self.start, 0, horizon))
        ramp = self.slope * np.arange(horizon - start)
        for channel in mask.attackable:
            values[start:, channel] = ramp
        return FDIAttack(values, mask=mask, metadata={"template": "ramp", "slope": self.slope})


@ATTACK_TEMPLATES.register("surge")
@dataclass(frozen=True)
class SurgeAttack(AttackTemplate):
    """Large initial surge followed by a small sustained bias.

    Classic "surge" adversary: a big injection for ``surge_length`` samples to
    push the plant away quickly, then a small value tuned to keep the residue
    below the detection threshold.
    """

    surge_value: float
    settle_value: float
    surge_length: int = 1
    mask: AttackChannelMask | None = None

    def generate(self, horizon: int, n_outputs: int) -> FDIAttack:
        horizon = int(check_positive("horizon", horizon))
        surge_length = int(np.clip(self.surge_length, 0, horizon))
        mask = self._resolve_mask(n_outputs)
        values = np.zeros((horizon, n_outputs))
        for channel in mask.attackable:
            values[:surge_length, channel] = self.surge_value
            values[surge_length:, channel] = self.settle_value
        return FDIAttack(
            values,
            mask=mask,
            metadata={"template": "surge", "surge": self.surge_value, "settle": self.settle_value},
        )


@ATTACK_TEMPLATES.register("geometric")
@dataclass(frozen=True)
class GeometricAttack(AttackTemplate):
    """Geometrically growing injection ``a_k = initial * ratio^k``.

    With ``ratio`` slightly above 1 this mimics the "slowly ramping stealthy"
    adversary that static thresholds struggle with.
    """

    initial: float
    ratio: float
    mask: AttackChannelMask | None = None

    def __post_init__(self) -> None:
        check_positive("ratio", self.ratio)

    def generate(self, horizon: int, n_outputs: int) -> FDIAttack:
        horizon = int(check_positive("horizon", horizon))
        mask = self._resolve_mask(n_outputs)
        values = np.zeros((horizon, n_outputs))
        growth = self.initial * np.power(self.ratio, np.arange(horizon))
        for channel in mask.attackable:
            values[:, channel] = growth
        return FDIAttack(
            values,
            mask=mask,
            metadata={"template": "geometric", "initial": self.initial, "ratio": self.ratio},
        )


@ATTACK_TEMPLATES.register("replay")
@dataclass(frozen=True)
class ReplayAttack(AttackTemplate):
    """Replay adversary.

    Records ``recorded`` (a ``(T_rec, m)`` block of past measurements) and
    replays it in place of the live measurements from ``start`` onward.  Since
    our attack representation is additive, :meth:`materialize` needs the live
    measurements to compute the additive difference; :meth:`generate` without
    a live trace falls back to replaying against zero (i.e. injecting the
    recording itself).
    """

    recorded: np.ndarray
    start: int = 0
    mask: AttackChannelMask | None = None

    def __post_init__(self) -> None:
        recorded = np.atleast_2d(np.asarray(self.recorded, dtype=float))
        object.__setattr__(self, "recorded", recorded)

    def generate(self, horizon: int, n_outputs: int) -> FDIAttack:
        return self.materialize(np.zeros((int(horizon), int(n_outputs))))

    def materialize(self, live_measurements: np.ndarray) -> FDIAttack:
        """Additive attack turning ``live_measurements`` into the recording."""
        live = np.atleast_2d(np.asarray(live_measurements, dtype=float))
        horizon, n_outputs = live.shape
        if self.recorded.shape[1] != n_outputs:
            raise ValidationError(
                f"recording has {self.recorded.shape[1]} channels, live trace has {n_outputs}"
            )
        mask = self._resolve_mask(n_outputs)
        values = np.zeros_like(live)
        start = int(np.clip(self.start, 0, horizon))
        usable = min(horizon - start, self.recorded.shape[0])
        for offset in range(usable):
            k = start + offset
            delta = self.recorded[offset] - live[k]
            values[k] = mask.project(delta)
        return FDIAttack(values, mask=mask, metadata={"template": "replay", "start": self.start})
