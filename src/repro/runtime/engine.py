"""Config-driven fleet deployment: synthesize detectors, monitor a fleet online.

:func:`run_fleet` is the runtime counterpart of
:func:`~repro.api.execute.run_pipeline`: where the pipeline *evaluates* the
synthesized detectors offline on pre-computed traces, ``run_fleet`` *deploys*
them — it synthesizes the configured thresholds, wraps them (plus any
registry-named baseline detectors and the plant's own ``mdc`` monitors) into
fleet-wide online cores, and streams a whole fleet of plant instances under
scheduled attacks, producing the online metrics (detection latency,
per-step FAR, throughput) of a live deployment.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.registry import ATTACK_TEMPLATES, CASE_STUDIES, DETECTORS, NOISE_MODELS
from repro.runtime.events import EventSink, JSONLSink
from repro.runtime.fleet import FleetSimulator, ScheduledAttack
from repro.runtime.report import FleetReport
from repro.utils.validation import ValidationError


def _resolve_problem(config, problem):
    """The SynthesisProblem to deploy: explicit argument or the config's case study."""
    if problem is None:
        if config.case_study is None:
            raise ValidationError(
                "a config-driven deployment needs a problem: pass one "
                "explicitly or set case_study on the config"
            )
        problem = CASE_STUDIES.create(config.case_study, **config.case_study_options)
    # Accept a packaged CaseStudy as well as a bare problem.
    return getattr(problem, "problem", problem)


def _innovation_covariance(problem) -> np.ndarray:
    """Steady-state innovation covariance ``S = C P C^T + R`` of the plant's filter."""
    from repro.estimation.kalman import steady_state_kalman

    plant = problem.system.plant
    _, P = steady_state_kalman(plant)
    R_v = plant.R_v if plant.R_v is not None else np.zeros((plant.n_outputs,) * 2)
    S = plant.C @ P @ plant.C.T + R_v
    return 0.5 * (S + S.T)


def _build_detector(problem, name: str, options: Mapping):
    """Instantiate a registry-named detector, filling in problem-derived defaults.

    The chi-square baselines need the plant's innovation covariance; when the
    config does not carry one explicitly it is derived from the plant's
    steady-state Kalman design, and a ``false_alarm_probability`` option
    selects the threshold from the chi-square inverse CDF.
    """
    options = dict(options)
    factory = DETECTORS.get(name)
    if name in ("chi-square", "online-chi-square"):
        options.setdefault("innovation_cov", _innovation_covariance(problem))
        probability = options.pop("false_alarm_probability", None)
        if probability is not None:
            return factory.from_false_alarm_probability(
                options["innovation_cov"], probability
            )
    return factory(**options)


def _default_noise_model(problem, scale: float):
    """The FAR study's benign envelope (bounded uniform at ``scale`` sigma).

    Falls back to the simulator's own default (Gaussian from the plant's
    ``R_v``) when the plant carries no measurement-noise covariance.
    """
    from repro.core.far import FalseAlarmEvaluator

    try:
        return FalseAlarmEvaluator.default_noise_model(problem, scale=scale)
    except ValidationError:
        return None


def _build_schedule(config) -> list[ScheduledAttack]:
    schedule = []
    for entry in config.attacks:
        entry = dict(entry)
        template = ATTACK_TEMPLATES.create(
            entry.pop("template"), **entry.pop("options", {})
        )
        instances = entry.pop("instances", None)
        if instances is not None:
            instances = tuple(int(i) for i in instances)
        schedule.append(
            ScheduledAttack(
                template=template,
                start=entry.pop("start", 0),
                instances=instances,
                fraction=entry.pop("fraction", None),
                label=entry.pop("label", ""),
            )
        )
    return schedule


def build_detector_bank(
    problem, config, extra: Mapping[str, object] | None = None
) -> dict[str, object]:
    """Assemble the ``label -> detector`` bank a deployment config describes.

    Shared by :func:`run_fleet` and :func:`repro.serve.engine.run_service`:
    ``config`` is any object carrying the four bank-defining fields
    (``synthesis``, ``static_thresholds``, ``detectors``, ``include_mdc``) —
    both :class:`~repro.api.config.RuntimeConfig` and
    :class:`~repro.api.config.ServiceConfig` qualify.  ``extra`` entries
    (caller-supplied detector objects) are merged last.  Raises when the
    result would be empty or any two sources collide on a label.
    """
    bank: dict[str, object] = {}

    def deploy(label: str, obj, source: str) -> None:
        # Silent label collisions would drop a configured detector; every
        # source (synthesis algorithms, static thresholds, named detectors,
        # mdc, explicit extras) must produce a distinct label.
        if label in bank:
            raise ValidationError(
                f"detector label {label!r} (from {source}) is already deployed; "
                "rename one of the colliding entries"
            )
        bank[label] = obj

    if config.synthesis is not None:
        # One run_pipeline call (FAR skipped) shares a single incremental
        # SynthesisSession across every algorithm and the optional relax
        # stage; the deployed vector is the relaxed one when configured.
        from repro.api.execute import run_pipeline

        pipeline = run_pipeline(problem, synthesis=config.synthesis)
        for algorithm in config.synthesis.algorithms:
            threshold = pipeline.deployed_threshold(algorithm)
            if threshold is not None:
                deploy(algorithm, threshold, "synthesis")
    for label, value in config.static_thresholds.items():
        deploy(str(label), problem.static_threshold(float(value)), "static_thresholds")
    for label, spec in config.detectors.items():
        deploy(
            str(label),
            _build_detector(problem, spec["name"], spec.get("options", {})),
            "detectors",
        )
    if config.include_mdc and len(problem.mdc) > 0:
        deploy("mdc", problem.mdc, "include_mdc")
    for label, obj in (extra or {}).items():
        deploy(str(label), obj, "the detectors argument")
    if not bank:
        raise ValidationError(
            "the configuration deploys no detectors: configure synthesis, "
            "static_thresholds, detectors, or include_mdc on a monitored plant"
        )
    return bank


def run_fleet(
    config,
    problem=None,
    *,
    detectors: Mapping[str, object] | None = None,
    attacks: Sequence[ScheduledAttack] = (),
    sinks: Sequence[EventSink] = (),
    metrics=None,
) -> FleetReport:
    """Deploy synthesized and baseline detectors on a monitored fleet.

    Parameters
    ----------
    config:
        A :class:`~repro.api.config.RuntimeConfig` describing the fleet:
        size, horizon, benign-noise envelope, detector bank, attack schedule.
    problem:
        The :class:`~repro.core.problem.SynthesisProblem` (or packaged
        :class:`~repro.systems.base.CaseStudy`) to deploy on; ``None``
        builds it from ``config.case_study``.
    detectors:
        Extra label → detector entries merged into the configured bank (any
        form :func:`~repro.runtime.batch.make_batched` accepts).
    attacks:
        Extra :class:`ScheduledAttack` entries appended to the configured
        schedule.
    sinks:
        Extra event sinks in addition to the config's ``events_path``.
    metrics:
        Telemetry wiring forwarded to :class:`FleetSimulator`: ``None``
        records into the process-wide registry (disabled by default),
        ``False`` compiles the instrumentation out, a
        :class:`~repro.obs.metrics.MetricsRegistry` records into that
        registry unconditionally.

    Returns
    -------
    FleetReport
        Detection rate, detection latency and false-alarm rates per deployed
        detector, plus throughput; the full config rides along in
        ``report.metadata["config"]``.
    """
    problem = _resolve_problem(config, problem)
    horizon = problem.horizon if config.horizon is None else config.horizon

    bank = build_detector_bank(problem, config, extra=detectors)

    if config.noise_model is not None:
        noise_model = NOISE_MODELS.create(config.noise_model, **config.noise_options)
    else:
        noise_model = _default_noise_model(problem, config.noise_scale)

    schedule = _build_schedule(config) + list(attacks)

    all_sinks = list(sinks)
    owned_sink = None
    if config.events_path is not None:
        owned_sink = JSONLSink(config.events_path)
        all_sinks.append(owned_sink)

    spread = None
    if config.initial_state_spread is not None:
        spread = np.asarray(config.initial_state_spread, dtype=float)

    simulator = FleetSimulator(
        problem.system,
        config.n_instances,
        horizon,
        detectors=bank,
        noise_model=noise_model,
        include_process_noise=config.include_process_noise,
        x0=problem.x0,
        x0_spread=spread,
        attacks=schedule,
        sinks=all_sinks,
        seed=config.seed,
        record_traces=config.record_traces,
        metrics=metrics,
        engine=config.engine,
        engine_options=config.engine_options,
    )
    try:
        report = simulator.run()
    finally:
        if owned_sink is not None:
            owned_sink.close()
    report.metadata["config"] = config.to_dict()
    report.metadata["problem"] = problem.name
    if config.record_traces:
        report.trace = simulator.trace
    return report


__all__ = ["build_detector_bank", "run_fleet"]
