"""Alarm events and pluggable event sinks for the fleet runtime.

Every alarm a deployed detector raises is an :class:`AlarmEvent` — which
fleet instance, at which sampling instance, from which detector.  The
:class:`~repro.runtime.fleet.FleetSimulator` pushes batches of events into
:class:`EventSink` objects at the end of every step; ship your own sink to
forward alarms to a message bus, a metrics system, or an incident pipeline.

Two sinks ship with the library: :class:`InMemorySink` (collects events in a
list, with small query helpers for tests and reports) and :class:`JSONLSink`
(appends one JSON object per event to a file, the standard interchange form
for offline analysis).
"""

from __future__ import annotations

import abc
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Sequence


@dataclass(frozen=True)
class AlarmEvent:
    """One alarm raised by one detector on one fleet instance.

    Attributes
    ----------
    instance:
        Fleet instance id (``0 .. N-1``).
    step:
        0-based sampling instance at which the alarm fired.
    detector:
        Label of the detector that raised it.
    first:
        True when this is the instance's first alarm from this detector
        (useful for time-to-alarm analysis without replaying the stream).
    """

    instance: int
    step: int
    detector: str
    first: bool = False

    def to_dict(self) -> dict:
        """Plain-data representation (JSON-compatible)."""
        return asdict(self)


class EventSink(abc.ABC):
    """Receives alarm-event batches from a running fleet."""

    @abc.abstractmethod
    def emit(self, events: Sequence[AlarmEvent]) -> None:
        """Consume one batch of events (all from the same fleet step)."""

    def close(self) -> None:
        """Flush and release any underlying resources."""

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class InMemorySink(EventSink):
    """Collects every event in a list (the default sink for tests and reports)."""

    def __init__(self) -> None:
        self.events: list[AlarmEvent] = []

    def emit(self, events: Sequence[AlarmEvent]) -> None:
        self.events.extend(events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterable[AlarmEvent]:
        return iter(self.events)

    def by_detector(self, label: str) -> list[AlarmEvent]:
        """All events raised by the detector with the given label."""
        return [event for event in self.events if event.detector == label]

    def by_instance(self, instance: int) -> list[AlarmEvent]:
        """All events raised on one fleet instance."""
        return [event for event in self.events if event.instance == instance]

    def first_alarms(self) -> dict[tuple[str, int], int]:
        """Mapping ``(detector, instance) -> step`` of each first alarm."""
        return {
            (event.detector, event.instance): event.step
            for event in self.events
            if event.first
        }


class JSONLSink(EventSink):
    """Appends one JSON object per event to a file (JSON Lines format)."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._handle = None

    def emit(self, events: Sequence[AlarmEvent]) -> None:
        if not events:
            return
        if self._handle is None:
            self._handle = self.path.open("a", encoding="utf-8")
        for event in events:
            self._handle.write(json.dumps(event.to_dict()) + "\n")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    @staticmethod
    def read(path: str | Path) -> list[AlarmEvent]:
        """Load a JSONL event file back into :class:`AlarmEvent` objects."""
        events = []
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    events.append(AlarmEvent(**json.loads(line)))
        return events


__all__ = ["AlarmEvent", "EventSink", "InMemorySink", "JSONLSink"]
