"""Alarm events and pluggable event sinks for the fleet runtime.

Every alarm a deployed detector raises is an :class:`AlarmEvent` — which
fleet instance, at which sampling instance, from which detector.  The
:class:`~repro.runtime.fleet.FleetSimulator` pushes batches of events into
:class:`EventSink` objects at the end of every step; ship your own sink to
forward alarms to a message bus, a metrics system, or an incident pipeline.

Two sinks ship with the library: :class:`InMemorySink` (collects events in a
list, with small query helpers for tests and reports) and :class:`JSONLSink`
(appends one JSON object per event to a file, the standard interchange form
for offline analysis).
"""

from __future__ import annotations

import abc
import json
from collections import deque
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.utils.validation import ValidationError


@dataclass(frozen=True)
class AlarmEvent:
    """One alarm raised by one detector on one fleet instance.

    Attributes
    ----------
    instance:
        Fleet instance id (``0 .. N-1``).
    step:
        0-based sampling instance at which the alarm fired.
    detector:
        Label of the detector that raised it.
    first:
        True when this is the instance's first alarm from this detector
        (useful for time-to-alarm analysis without replaying the stream).
    """

    instance: int
    step: int
    detector: str
    first: bool = False

    def to_dict(self) -> dict:
        """Plain-data representation (JSON-compatible)."""
        return asdict(self)


class EventSink(abc.ABC):
    """Receives alarm-event batches from a running fleet."""

    @abc.abstractmethod
    def emit(self, events: Sequence[AlarmEvent]) -> None:
        """Consume one batch of events (all from the same fleet step)."""

    def close(self) -> None:
        """Flush and release any underlying resources."""

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class InMemorySink(EventSink):
    """Collects every event in memory (the default sink for tests and reports).

    Parameters
    ----------
    maxlen:
        Optional retention cap.  ``None`` (the default) keeps every event in
        a plain list; an integer keeps only the most recent ``maxlen`` events
        in a bounded deque, so an always-on service cannot grow the sink
        without bound.  :attr:`evicted` counts events that aged out.
    """

    def __init__(self, maxlen: int | None = None) -> None:
        self.maxlen = None if maxlen is None else int(maxlen)
        if self.maxlen is not None and self.maxlen <= 0:
            raise ValidationError("maxlen must be positive (or None for unbounded)")
        self.events: Sequence[AlarmEvent] = (
            [] if self.maxlen is None else deque(maxlen=self.maxlen)
        )
        self.evicted = 0

    def emit(self, events: Sequence[AlarmEvent]) -> None:
        if self.maxlen is not None:
            overflow = len(self.events) + len(events) - self.maxlen
            if overflow > 0:
                self.evicted += overflow
        self.events.extend(events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterable[AlarmEvent]:
        return iter(self.events)

    def by_detector(self, label: str) -> list[AlarmEvent]:
        """All events raised by the detector with the given label."""
        return [event for event in self.events if event.detector == label]

    def by_instance(self, instance: int) -> list[AlarmEvent]:
        """All events raised on one fleet instance."""
        return [event for event in self.events if event.instance == instance]

    def first_alarms(self) -> dict[tuple[str, int], int]:
        """Mapping ``(detector, instance) -> step`` of each first alarm."""
        return {
            (event.detector, event.instance): event.step
            for event in self.events
            if event.first
        }


class JSONLSink(EventSink):
    """Appends one JSON object per event to a file (JSON Lines format).

    Parameters
    ----------
    path:
        The event-log file (appended to, created on first event).
    flush_every:
        Flush the OS buffer every this-many ``emit`` batches (default 1:
        after every batch), so a killed long-running service leaves a
        readable log that is at most ``flush_every`` batches behind.  ``0``
        defers flushing to :meth:`close` (the pre-flush behaviour, fastest
        for short offline runs).
    """

    def __init__(self, path: str | Path, flush_every: int = 1):
        self.path = Path(path)
        self.flush_every = int(flush_every)
        if self.flush_every < 0:
            raise ValidationError("flush_every must be non-negative")
        self._handle = None
        self._emits_since_flush = 0

    def emit(self, events: Sequence[AlarmEvent]) -> None:
        if not events:
            return
        if self._handle is None:
            self._handle = self.path.open("a", encoding="utf-8")
        for event in events:
            self._handle.write(json.dumps(event.to_dict()) + "\n")
        self._emits_since_flush += 1
        if self.flush_every and self._emits_since_flush >= self.flush_every:
            self._handle.flush()
            self._emits_since_flush = 0

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    @staticmethod
    def read(path: str | Path) -> list[AlarmEvent]:
        """Load a JSONL event file back into :class:`AlarmEvent` objects.

        Mirrors :class:`~repro.explore.store.ResultStore`'s partial-write
        handling: a truncated/corrupt *trailing* line — the signature of a
        service killed mid-append — is dropped silently, while a corrupt
        *interior* line still raises (the file was tampered with, not merely
        cut short).
        """
        events = []
        for position, line in enumerate(lines := _stripped_lines(path)):
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                if position == len(lines) - 1:
                    break
                raise
            events.append(AlarmEvent(**data))
        return events


def _stripped_lines(path: str | Path) -> list[str]:
    """Non-empty stripped lines of a text file."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return [line.strip() for line in handle if line.strip()]


__all__ = ["AlarmEvent", "EventSink", "InMemorySink", "JSONLSink"]
