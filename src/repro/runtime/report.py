"""Fleet-level aggregation of online detection outcomes.

A :class:`FleetReport` summarises one :class:`~repro.runtime.fleet.FleetSimulator`
run: for every deployed detector it reports the detection rate and detection
latency over the attacked sub-fleet and the (per-instance and per-step) false
alarm rates over the benign sub-fleet — the online metrics the offline
``evaluate`` path cannot express.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class DetectorFleetStats:
    """Online metrics of one deployed detector over one fleet run.

    Attributes
    ----------
    label:
        Detector label within the fleet.
    alarm_count:
        Total alarmed instance-steps (attacked and benign alike).
    alarmed_instances:
        Number of instances with at least one alarm anywhere in the run.
    detection_rate:
        Fraction of *attacked* instances with at least one alarm at or after
        their attack start (``None`` when the fleet had no attacked instances).
    mean_detection_latency / median_detection_latency:
        Steps from attack start to the first such alarm, over detected
        instances (``None`` when nothing was detected).
    false_alarm_rate:
        Fraction of *benign* instances with at least one alarm (``None`` when
        the whole fleet was attacked).
    per_step_false_alarm_rate:
        Fraction of benign instance-steps that alarmed — the online per-step
        FAR.
    """

    label: str
    alarm_count: int = 0
    alarmed_instances: int = 0
    detection_rate: float | None = None
    mean_detection_latency: float | None = None
    median_detection_latency: float | None = None
    false_alarm_rate: float | None = None
    per_step_false_alarm_rate: float | None = None

    def to_dict(self) -> dict:
        """Plain-data representation (JSON-compatible)."""
        return {
            "label": self.label,
            "alarm_count": self.alarm_count,
            "alarmed_instances": self.alarmed_instances,
            "detection_rate": self.detection_rate,
            "mean_detection_latency": self.mean_detection_latency,
            "median_detection_latency": self.median_detection_latency,
            "false_alarm_rate": self.false_alarm_rate,
            "per_step_false_alarm_rate": self.per_step_false_alarm_rate,
        }


@dataclass
class FleetReport:
    """Aggregated outcome of one fleet-monitoring run.

    Attributes
    ----------
    n_instances / horizon:
        Fleet size ``N`` and number of sampling instances ``T`` stepped.
    n_attacked:
        Instances that received at least one scheduled attack injection.
    detectors:
        Per-detector :class:`DetectorFleetStats`, keyed by label.
    elapsed_seconds:
        Wall-clock duration of the stepping loop.
    metadata:
        Free-form provenance (system name, seed, attack schedule, ...).
    trace:
        The full :class:`~repro.runtime.fleet.FleetTrace` when the run
        recorded trajectories (``record_traces=True``); excluded from
        :meth:`to_dict` so the report stays JSON-compatible.
    """

    n_instances: int
    horizon: int
    n_attacked: int = 0
    detectors: dict[str, DetectorFleetStats] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    metadata: dict = field(default_factory=dict)
    trace: object | None = field(default=None, repr=False, compare=False)

    @property
    def n_benign(self) -> int:
        """Instances that never received an attack injection."""
        return self.n_instances - self.n_attacked

    @property
    def instance_steps(self) -> int:
        """Total work performed: instances × steps."""
        return self.n_instances * self.horizon

    @property
    def throughput(self) -> float:
        """Instance-steps per second of the stepping loop.

        ``NaN`` when ``elapsed_seconds`` is zero or negative: a report built
        without a measured run has no meaningful rate, and NaN (unlike the
        former ``inf``) poisons any aggregate that accidentally includes it
        and fails every ``>`` gate instead of passing vacuously.
        """
        if self.elapsed_seconds <= 0:
            return float("nan")
        return self.instance_steps / self.elapsed_seconds

    def stats(self, label: str) -> DetectorFleetStats:
        """Stats of one deployed detector (by label)."""
        return self.detectors[label]

    def summary_rows(self) -> list[dict]:
        """Tabular summary, one row per detector, sorted by label."""
        return [self.detectors[label].to_dict() for label in sorted(self.detectors)]

    def to_dict(self) -> dict:
        """Plain-data representation (JSON-compatible)."""
        return {
            "n_instances": self.n_instances,
            "horizon": self.horizon,
            "n_attacked": self.n_attacked,
            "elapsed_seconds": self.elapsed_seconds,
            "throughput": self.throughput,
            "detectors": {label: s.to_dict() for label, s in sorted(self.detectors.items())},
            "metadata": dict(self.metadata),
        }

    def __str__(self) -> str:
        def fmt(value, digits=4):
            if value is None:
                return "-"
            return f"{value:.{digits}g}"

        lines = [
            f"FleetReport: {self.n_instances} instances x {self.horizon} steps "
            f"({self.n_attacked} attacked), {self.elapsed_seconds:.3f}s "
            f"({self.throughput:,.0f} instance-steps/s)"
        ]
        header = (
            f"{'detector':<24}{'det.rate':>10}{'latency':>10}"
            f"{'FAR':>10}{'step FAR':>10}{'alarms':>9}"
        )
        lines.append(header)
        for label in sorted(self.detectors):
            s = self.detectors[label]
            lines.append(
                f"{label:<24}{fmt(s.detection_rate):>10}"
                f"{fmt(s.mean_detection_latency):>10}{fmt(s.false_alarm_rate):>10}"
                f"{fmt(s.per_step_false_alarm_rate):>10}{s.alarm_count:>9}"
            )
        return "\n".join(lines)


def build_detector_stats(
    label: str,
    first_alarm: np.ndarray,
    first_detection: np.ndarray,
    alarm_count: int,
    benign_alarm_steps: int,
    attacked_mask: np.ndarray,
    attack_start: np.ndarray,
    horizon: int,
) -> DetectorFleetStats:
    """Assemble one detector's stats from the simulator's per-instance arrays.

    Parameters
    ----------
    first_alarm / first_detection:
        Per-instance step of the first alarm anywhere / at-or-after the
        instance's attack start (``-1`` when none fired).
    benign_alarm_steps:
        Alarmed instance-steps over benign instances only.
    attacked_mask / attack_start:
        Which instances were attacked and from which step.
    """
    stats = DetectorFleetStats(label=label, alarm_count=int(alarm_count))
    stats.alarmed_instances = int(np.sum(first_alarm >= 0))

    n_attacked = int(np.sum(attacked_mask))
    n_benign = attacked_mask.size - n_attacked
    if n_attacked:
        detected = attacked_mask & (first_detection >= 0)
        stats.detection_rate = float(np.sum(detected) / n_attacked)
        if np.any(detected):
            latencies = (first_detection - attack_start)[detected]
            stats.mean_detection_latency = float(np.mean(latencies))
            stats.median_detection_latency = float(np.median(latencies))
    if n_benign:
        benign = ~attacked_mask
        stats.false_alarm_rate = float(np.sum(first_alarm[benign] >= 0) / n_benign)
        stats.per_step_false_alarm_rate = float(benign_alarm_steps / (n_benign * horizon))
    return stats


__all__ = ["DetectorFleetStats", "FleetReport", "build_detector_stats"]
