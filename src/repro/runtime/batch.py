"""Vectorized (fleet-wide) online detector and monitor cores.

Each core advances ``N`` detector instances one sampling instance at a time:
``step(values)`` takes an ``(N, m)`` block (one residue or measurement vector
per fleet instance) and returns an ``(N,)`` boolean alarm vector.  All
internal state — step counters, CUSUM accumulators, dead-zone run lengths,
previous-measurement buffers — is shaped ``(N, ...)`` so a whole fleet steps
in a handful of numpy operations.

The cores deliberately reuse the *same* numpy expressions as the offline
``evaluate`` paths (e.g. :meth:`ThresholdVector.residue_norms` applied to an
``(N, m)`` block instead of a ``(T, m)`` trace), so a single instance stepped
online produces bit-identical alarm sequences to the offline detectors; the
equivalence is locked in by ``tests/test_runtime_online.py``.

:func:`make_batched` adapts any of the library's offline objects — a
:class:`~repro.detectors.threshold.ThresholdVector`, a residue / CUSUM /
chi-square detector, or a plant :class:`~repro.monitors.base.Monitor` — into
the matching core.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.detectors.chi_square import ChiSquareDetector
from repro.detectors.cusum import CusumDetector
from repro.detectors.residue import ResidueDetector
from repro.detectors.threshold import ThresholdVector, alarm_comparison
from repro.monitors.base import Monitor
from repro.monitors.composite import CompositeMonitor
from repro.monitors.deadzone import DeadZoneMonitor
from repro.monitors.gradient_monitor import GradientMonitor
from repro.monitors.range_monitor import RangeMonitor
from repro.monitors.relation_monitor import RelationMonitor
from repro.utils.validation import ValidationError, check_positive


class BatchDetector(abc.ABC):
    """Base class of all fleet-wide online cores.

    Attributes
    ----------
    consumes:
        Which per-step signal the core expects: ``"residues"`` (Kalman
        innovations) or ``"measurements"`` (raw sensor vectors, for plant
        monitors).
    n_instances:
        Number of fleet instances stepped in parallel.
    version:
        Cache epoch.  Incremented by every operation that changes the core's
        membership or parameters (:meth:`grow`, :meth:`compact`,
        :meth:`rebind`) *without* touching surviving per-instance state.
        Fused execution plans (``repro.runtime.kernel.serve``) key their
        pre-stacked block matrices on this counter, so a mid-run attach or
        threshold hot-swap rebuilds the stacks instead of silently applying
        stale parameters — while detector state, which lives in the core and
        never in the plan, survives the rebuild bit-for-bit.
    """

    consumes: str = "residues"

    def __init__(self, n_instances: int):
        self.n_instances = int(check_positive("n_instances", n_instances))
        self._step_index = 0
        self.version = 0

    @property
    def step_index(self) -> int:
        """Number of sampling instances consumed since the last reset."""
        return self._step_index

    @abc.abstractmethod
    def step(self, values: np.ndarray) -> np.ndarray:
        """Advance one sampling instance; ``values`` is ``(N, m)``, returns ``(N,)`` alarms."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Return every instance to its initial (pre-trace) state."""

    @property
    @abc.abstractmethod
    def state(self) -> dict:
        """Snapshot of the per-instance state (arrays are copies)."""

    # ------------------------------------------------------------------
    # dynamic membership (used by repro.serve for attach/detach mid-run)
    # ------------------------------------------------------------------
    def grow(self, count: int = 1) -> None:
        """Append ``count`` fresh instances (state as at construction).

        Existing instances' state is untouched; the new rows start from the
        initial (pre-trace) state, including a per-instance step counter of 0
        where the core keeps one.
        """
        count = int(count)
        if count <= 0:
            raise ValidationError("grow requires a positive instance count")
        self._grow_state(count)
        self.n_instances += count
        self.version += 1

    def compact(self, keep: np.ndarray) -> None:
        """Shrink the batch to the given instance rows.

        ``keep`` must be strictly increasing row indices; the surviving
        instances keep their state bit-for-bit (rows are sliced, never
        recomputed).  An empty ``keep`` empties the batch — valid for a
        long-lived service whose last instance detached.
        """
        keep = np.asarray(keep, dtype=int).reshape(-1)
        if keep.size:
            if keep.min() < 0 or keep.max() >= self.n_instances:
                raise ValidationError(
                    f"compact indices out of range [0, {self.n_instances})"
                )
            if np.any(np.diff(keep) <= 0):
                raise ValidationError("compact indices must be strictly increasing")
        self._compact_state(keep)
        self.n_instances = int(keep.size)
        self.version += 1

    def _grow_state(self, count: int) -> None:
        """Per-core hook: append ``count`` fresh rows to every state array."""

    def _compact_state(self, keep: np.ndarray) -> None:
        """Per-core hook: slice every state array down to the ``keep`` rows."""

    def rebind(self, obj) -> None:
        """Hot-swap the detector's parameters without resetting any state.

        Used by :meth:`repro.serve.service.MonitorService.swap_thresholds`
        to deploy re-synthesized thresholds into a running fleet.  Cores
        without swappable parameters raise.
        """
        raise ValidationError(
            f"{type(self).__name__} does not support hot rebinding"
        )

    # ------------------------------------------------------------------
    def _check_block(self, values: np.ndarray) -> np.ndarray:
        values = np.atleast_2d(np.asarray(values, dtype=float))
        if values.shape[0] != self.n_instances:
            raise ValidationError(
                f"expected a block of {self.n_instances} instances, got {values.shape[0]}"
            )
        return values

    def run(self, values: np.ndarray) -> np.ndarray:
        """Step through a ``(T, N, m)`` block; returns ``(T, N)`` alarm flags."""
        values = np.asarray(values, dtype=float)
        alarms = np.zeros(values.shape[:2], dtype=bool)
        for k in range(values.shape[0]):
            alarms[k] = self.step(values[k])
        return alarms


class BatchThresholdDetector(BatchDetector):
    """Fleet-wide online form of the paper's residue threshold detector.

    Compares the (weighted) residue norm of every instance against the
    per-instance-step threshold ``Th[k]``; past the stored threshold length
    the last value is held, matching :meth:`ThresholdVector.effective`.
    """

    def __init__(self, threshold: ThresholdVector, n_instances: int = 1):
        super().__init__(n_instances)
        if not isinstance(threshold, ThresholdVector):
            threshold = ThresholdVector(np.asarray(threshold, dtype=float))
        self.threshold = threshold
        # Per-instance sample counters: instances attached mid-run (grow)
        # start their threshold timeline at 0 while the rest of the fleet is
        # already deep into the vector.
        self._steps = np.zeros(self.n_instances, dtype=int)

    def step(self, residues: np.ndarray) -> np.ndarray:
        residues = self._check_block(residues)
        norms = self.threshold.residue_norms(residues)
        index = np.minimum(self._steps, self.threshold.length - 1)
        self._steps += 1
        self._step_index += 1
        return alarm_comparison(norms, self.threshold.values[index])

    def reset(self) -> None:
        self._step_index = 0
        self._steps = np.zeros(self.n_instances, dtype=int)

    @property
    def state(self) -> dict:
        return {"step": self._step_index, "steps": self._steps.copy()}

    def _grow_state(self, count: int) -> None:
        self._steps = np.concatenate([self._steps, np.zeros(count, dtype=int)])

    def _compact_state(self, keep: np.ndarray) -> None:
        self._steps = self._steps[keep]

    def rebind(self, threshold) -> None:
        """Swap in a new :class:`ThresholdVector`; per-instance steps are kept."""
        if not isinstance(threshold, ThresholdVector):
            try:
                threshold = ThresholdVector(np.asarray(threshold, dtype=float))
            except (TypeError, ValueError) as error:
                raise ValidationError(
                    "BatchThresholdDetector rebinds to a ThresholdVector"
                ) from error
        self.threshold = threshold
        self.version += 1


class BatchCusum(BatchDetector):
    """Fleet-wide online CUSUM: one ``(N,)`` accumulator advanced per step."""

    def __init__(self, detector: CusumDetector, n_instances: int = 1):
        super().__init__(n_instances)
        self.detector = detector
        self._statistic = np.zeros(self.n_instances)

    def step(self, residues: np.ndarray) -> np.ndarray:
        residues = self._check_block(residues)
        norms = self.detector._norms(residues)
        self._statistic = np.maximum(0.0, self._statistic + norms - self.detector.bias)
        self._step_index += 1
        return self._statistic >= self.detector.threshold

    def reset(self) -> None:
        self._step_index = 0
        self._statistic = np.zeros(self.n_instances)

    @property
    def state(self) -> dict:
        return {"step": self._step_index, "statistic": self._statistic.copy()}

    def _grow_state(self, count: int) -> None:
        self._statistic = np.concatenate([self._statistic, np.zeros(count)])

    def _compact_state(self, keep: np.ndarray) -> None:
        self._statistic = self._statistic[keep]

    def rebind(self, detector) -> None:
        """Swap bias/threshold (a :class:`CusumDetector`); accumulators are kept."""
        if not isinstance(detector, CusumDetector):
            raise ValidationError("BatchCusum rebinds to a CusumDetector")
        self.detector = detector
        self.version += 1


class BatchChiSquare(BatchDetector):
    """Fleet-wide online chi-square detector (stateless per sample)."""

    def __init__(self, detector: ChiSquareDetector, n_instances: int = 1):
        super().__init__(n_instances)
        self.detector = detector

    def step(self, residues: np.ndarray) -> np.ndarray:
        residues = self._check_block(residues)
        statistics = self.detector.statistics(residues)
        self._step_index += 1
        return statistics >= self.detector.threshold

    def reset(self) -> None:
        self._step_index = 0

    @property
    def state(self) -> dict:
        return {"step": self._step_index}

    def rebind(self, detector) -> None:
        """Swap in a new :class:`ChiSquareDetector` (covariance and/or threshold)."""
        if not isinstance(detector, ChiSquareDetector):
            raise ValidationError("BatchChiSquare rebinds to a ChiSquareDetector")
        self.detector = detector
        self.version += 1


# ----------------------------------------------------------------------
# Plant monitors
# ----------------------------------------------------------------------
def _batch_satisfied(
    monitor: Monitor,
    previous: np.ndarray | None,
    current: np.ndarray,
    dt: float,
    valid: np.ndarray | None = None,
) -> np.ndarray:
    """Per-instance "check passes at this sample" for one monitor.

    Mirrors the per-sample expressions of each monitor's offline
    ``satisfied`` (including the 1e-12 comparison slack) over the instance
    axis.  Monitors outside the built-in hierarchy fall back to evaluating
    their own ``satisfied`` on a two-sample window per instance, which stays
    correct for any monitor with at most one sample of lookback.

    ``valid`` flags which rows of ``previous`` hold a real earlier sample;
    instances attached mid-run have none yet, and behave like an instance at
    its first sample (gradient checks pass).  ``None`` means every row is
    valid, matching the closed-batch path.
    """
    if isinstance(monitor, RangeMonitor):
        values = current[:, monitor.channel]
        return (values >= monitor.low - 1e-12) & (values <= monitor.high + 1e-12)
    if isinstance(monitor, RelationMonitor):
        mismatch = (
            current[:, monitor.channel_a]
            - monitor.gain * current[:, monitor.channel_b]
            - monitor.offset
        )
        return np.abs(mismatch) <= monitor.allowed_diff + 1e-12
    if isinstance(monitor, GradientMonitor):
        if previous is None:
            return np.ones(current.shape[0], dtype=bool)
        rates = np.abs(current[:, monitor.channel] - previous[:, monitor.channel]) / float(dt)
        satisfied = rates <= monitor.max_rate + 1e-12
        if valid is not None:
            satisfied |= ~valid
        return satisfied
    if isinstance(monitor, DeadZoneMonitor):
        return _batch_satisfied(monitor.inner, previous, current, dt, valid)
    if isinstance(monitor, CompositeMonitor):
        result = np.ones(current.shape[0], dtype=bool)
        for member in monitor.monitors:
            result &= _batch_satisfied(member, previous, current, dt, valid)
        return result
    # Generic fallback: per-instance two-sample window (slow path).
    result = np.zeros(current.shape[0], dtype=bool)
    for i in range(current.shape[0]):
        has_previous = previous is not None and (valid is None or bool(valid[i]))
        if not has_previous:
            window = current[i : i + 1]
        else:
            window = np.vstack([previous[i], current[i]])
        result[i] = bool(monitor.satisfied(window, dt)[-1])
    return result


class _MonitorNode:
    """Per-monitor alarm state within a :class:`BatchMonitor` tree."""

    def __init__(self, monitor: Monitor, n_instances: int):
        self.monitor = monitor
        self.n_instances = n_instances
        if isinstance(monitor, DeadZoneMonitor):
            self.run_length = np.zeros(n_instances, dtype=int)
        elif isinstance(monitor, CompositeMonitor):
            self.children = [_MonitorNode(member, n_instances) for member in monitor.monitors]

    def alarms(
        self,
        previous: np.ndarray | None,
        current: np.ndarray,
        dt: float,
        valid: np.ndarray | None = None,
    ) -> np.ndarray:
        if isinstance(self.monitor, CompositeMonitor):
            result = np.zeros(current.shape[0], dtype=bool)
            for child in self.children:
                result |= child.alarms(previous, current, dt, valid)
            return result
        if isinstance(self.monitor, DeadZoneMonitor):
            violated = ~_batch_satisfied(self.monitor.inner, previous, current, dt, valid)
            self.run_length = np.where(violated, self.run_length + 1, 0)
            return self.run_length >= self.monitor.dead_zone_samples
        return ~_batch_satisfied(self.monitor, previous, current, dt, valid)

    def reset(self) -> None:
        if isinstance(self.monitor, DeadZoneMonitor):
            self.run_length = np.zeros(self.n_instances, dtype=int)
        elif isinstance(self.monitor, CompositeMonitor):
            for child in self.children:
                child.reset()

    def grow(self, count: int) -> None:
        self.n_instances += count
        if isinstance(self.monitor, DeadZoneMonitor):
            self.run_length = np.concatenate([self.run_length, np.zeros(count, dtype=int)])
        elif isinstance(self.monitor, CompositeMonitor):
            for child in self.children:
                child.grow(count)

    def compact(self, keep: np.ndarray) -> None:
        self.n_instances = int(keep.size)
        if isinstance(self.monitor, DeadZoneMonitor):
            self.run_length = self.run_length[keep]
        elif isinstance(self.monitor, CompositeMonitor):
            for child in self.children:
                child.compact(keep)

    def _kind(self) -> str:
        if isinstance(self.monitor, DeadZoneMonitor):
            return "dead-zone"
        if isinstance(self.monitor, CompositeMonitor):
            return "composite"
        return "leaf"

    def adopt(self, old: "_MonitorNode") -> None:
        """Carry per-instance alarm state over from a structurally matching tree.

        A replacement monitor may change parameters (bounds, rates, dead-zone
        lengths) but not the tree shape: dead-zone run-length counters only
        survive a swap when old and new node are both dead-zoned, and
        composites must have the same member count.
        """
        if self._kind() != old._kind():
            raise ValidationError(
                f"replacement monitor structure differs ({old._kind()} -> "
                f"{self._kind()}); per-instance monitor state cannot be preserved"
            )
        if isinstance(self.monitor, DeadZoneMonitor):
            self.run_length = old.run_length.copy()
        elif isinstance(self.monitor, CompositeMonitor):
            if len(self.children) != len(old.children):
                raise ValidationError(
                    f"replacement composite has {len(self.children)} members, "
                    f"the deployed one has {len(old.children)}"
                )
            for child, old_child in zip(self.children, old.children):
                child.adopt(old_child)

    def snapshot(self, state: dict, prefix: str) -> None:
        if isinstance(self.monitor, DeadZoneMonitor):
            state[f"{prefix}{self.monitor.name}.run_length"] = self.run_length.copy()
        elif isinstance(self.monitor, CompositeMonitor):
            for index, child in enumerate(self.children):
                child.snapshot(state, f"{prefix}[{index}]")


class BatchMonitor(BatchDetector):
    """Fleet-wide online form of a plant monitor (``mdc``).

    Consumes *measurements* instead of residues; keeps one previous
    measurement per instance (for gradient monitors) and one dead-zone
    run-length counter per instance per dead-zoned member.
    """

    consumes = "measurements"

    def __init__(self, monitor: Monitor, dt: float, n_instances: int = 1):
        super().__init__(n_instances)
        self.monitor = monitor
        self.dt = float(check_positive("dt", dt))
        self._root = _MonitorNode(monitor, self.n_instances)
        self._previous: np.ndarray | None = None
        self._has_previous = np.zeros(self.n_instances, dtype=bool)

    def step(self, measurements: np.ndarray) -> np.ndarray:
        measurements = self._check_block(measurements)
        if self._previous is None or not np.any(self._has_previous):
            # No instance has an earlier sample: identical to the first step
            # of a closed batch.
            alarms = self._root.alarms(None, measurements, self.dt)
        else:
            alarms = self._root.alarms(
                self._previous, measurements, self.dt, self._has_previous
            )
        self._previous = measurements.copy()
        self._has_previous[:] = True
        self._step_index += 1
        return alarms

    def reset(self) -> None:
        self._step_index = 0
        self._previous = None
        self._has_previous = np.zeros(self.n_instances, dtype=bool)
        self._root.reset()

    def _grow_state(self, count: int) -> None:
        self._root.grow(count)
        self._has_previous = np.concatenate(
            [self._has_previous, np.zeros(count, dtype=bool)]
        )
        if self._previous is not None:
            self._previous = np.vstack(
                [self._previous, np.zeros((count, self._previous.shape[1]))]
            )

    def _compact_state(self, keep: np.ndarray) -> None:
        self._root.compact(keep)
        self._has_previous = self._has_previous[keep]
        if self._previous is not None:
            self._previous = self._previous[keep]

    def rebind(self, monitor) -> None:
        """Swap in a structurally matching :class:`Monitor`; run-lengths are kept."""
        if not isinstance(monitor, Monitor):
            raise ValidationError("BatchMonitor rebinds to a Monitor")
        replacement = _MonitorNode(monitor, self.n_instances)
        replacement.adopt(self._root)
        self.monitor = monitor
        self._root = replacement
        self.version += 1

    @property
    def state(self) -> dict:
        state: dict = {"step": self._step_index}
        if self._previous is not None:
            state["previous"] = self._previous.copy()
        self._root.snapshot(state, "")
        return state


# ----------------------------------------------------------------------
def make_batched(obj, n_instances: int, dt: float | None = None) -> BatchDetector:
    """Adapt any detector-shaped object into a fleet-wide :class:`BatchDetector`.

    Accepts an existing :class:`BatchDetector` (instance count must match), a
    scalar online wrapper from :mod:`repro.runtime.online` (re-batched via its
    ``as_batch``), a :class:`ThresholdVector` or any of the offline detector
    classes, or a plant :class:`Monitor` (requires ``dt``).
    """
    if isinstance(obj, BatchDetector):
        if obj.n_instances != n_instances:
            raise ValidationError(
                f"batched detector is sized for {obj.n_instances} instances, fleet has {n_instances}"
            )
        return obj
    as_batch = getattr(obj, "as_batch", None)
    if as_batch is not None:
        return as_batch(n_instances)
    if isinstance(obj, ThresholdVector):
        return BatchThresholdDetector(obj, n_instances)
    if isinstance(obj, ResidueDetector):
        return BatchThresholdDetector(obj.threshold, n_instances)
    if isinstance(obj, CusumDetector):
        return BatchCusum(obj, n_instances)
    if isinstance(obj, ChiSquareDetector):
        return BatchChiSquare(obj, n_instances)
    if isinstance(obj, Monitor):
        if dt is None:
            raise ValidationError("adapting a plant monitor requires the sampling period dt")
        return BatchMonitor(obj, dt, n_instances)
    raise ValidationError(
        f"cannot build an online detector from {type(obj).__name__}; expected a "
        "ThresholdVector, detector, Monitor, or online/batched wrapper"
    )
