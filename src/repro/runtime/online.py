"""Scalar online detector wrappers: ``step(z_k) -> alarm`` with reset/state.

These are the single-instance deployment forms of the offline detectors: a
controller loop (or the :class:`~repro.runtime.fleet.FleetSimulator`) feeds
one residue or measurement vector per sampling instance and receives the
alarm decision immediately.  Every wrapper delegates to the matching
fleet-wide core in :mod:`repro.runtime.batch` with ``n_instances=1``, so the
online and batched paths cannot drift apart; both are proven trace-equivalent
to the offline ``evaluate`` paths by ``tests/test_runtime_online.py``.

The wrappers are registered in the detector registry under ``online-residue``,
``online-cusum`` and ``online-chi-square``.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.detectors.chi_square import ChiSquareDetector
from repro.detectors.cusum import CusumDetector
from repro.detectors.residue import ResidueDetector
from repro.detectors.threshold import ThresholdVector
from repro.monitors.base import Monitor
from repro.registry import DETECTORS
from repro.runtime.batch import (
    BatchChiSquare,
    BatchCusum,
    BatchDetector,
    BatchMonitor,
    BatchThresholdDetector,
    make_batched,
)
from repro.utils.validation import ValidationError


class OnlineDetector(abc.ABC):
    """Base class of the scalar online wrappers.

    Attributes
    ----------
    consumes:
        ``"residues"`` or ``"measurements"`` — which signal :meth:`step`
        expects.
    """

    def __init__(self, core: BatchDetector):
        if core.n_instances != 1:
            raise ValidationError("an OnlineDetector wraps a single-instance core")
        self._core = core

    @property
    def consumes(self) -> str:
        """Which per-step signal the detector expects."""
        return self._core.consumes

    @property
    def step_index(self) -> int:
        """Number of samples consumed since the last reset."""
        return self._core.step_index

    @property
    def version(self) -> int:
        """Cache epoch of the wrapped core (bumped by every :meth:`rebind`).

        Mirrors :attr:`repro.runtime.batch.BatchDetector.version`, the key
        fused execution plans use to notice parameter swaps; exposing it here
        lets callers holding only the online wrapper invalidate their own
        caches on the same signal.
        """
        return self._core.version

    @property
    def state(self) -> dict:
        """Snapshot of the detector state (step counter plus detector-specific state)."""
        return self._core.state

    def step(self, sample: np.ndarray) -> bool:
        """Consume one residue/measurement vector, return the alarm decision."""
        sample = np.asarray(sample, dtype=float).reshape(1, -1)
        return bool(self._core.step(sample)[0])

    def reset(self) -> None:
        """Return to the initial (pre-trace) state."""
        self._core.reset()

    def rebind(self, obj) -> None:
        """Hot-swap the detector's parameters without resetting its state.

        Delegates to the wrapped core's
        :meth:`~repro.runtime.batch.BatchDetector.rebind`; subclasses keep
        their convenience attributes (``threshold``, ``detector``,
        ``monitor``) in sync.
        """
        self._core.rebind(obj)

    def run(self, samples: np.ndarray) -> np.ndarray:
        """Step through a ``(T, m)`` sequence, returning the ``(T,)`` alarm flags.

        Convenience for tests and offline comparison; resets first so the
        result matches a fresh deployment over the sequence.
        """
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
        self.reset()
        return np.array([self.step(row) for row in samples], dtype=bool)

    @abc.abstractmethod
    def as_batch(self, n_instances: int) -> BatchDetector:
        """The fleet-wide core equivalent to this detector, for ``n_instances``."""


@DETECTORS.register("online-residue")
class OnlineResidueDetector(OnlineDetector):
    """Online form of the paper's residue threshold detector.

    Parameters
    ----------
    threshold:
        The (static or synthesized variable) threshold specification; a plain
        array of per-sample thresholds is also accepted.
    """

    def __init__(self, threshold: ThresholdVector):
        if not isinstance(threshold, ThresholdVector):
            threshold = ThresholdVector(np.asarray(threshold, dtype=float))
        self.threshold = threshold
        super().__init__(BatchThresholdDetector(threshold, 1))

    @classmethod
    def from_detector(cls, detector: ResidueDetector) -> "OnlineResidueDetector":
        """Online wrapper around an offline :class:`ResidueDetector`."""
        return cls(detector.threshold)

    def rebind(self, threshold) -> None:
        """Swap in a new threshold vector; the sample position is kept."""
        self._core.rebind(threshold)
        self.threshold = self._core.threshold

    def as_batch(self, n_instances: int) -> BatchThresholdDetector:
        return BatchThresholdDetector(self.threshold, n_instances)


@DETECTORS.register("online-cusum")
class OnlineCusum(OnlineDetector):
    """Online CUSUM with a persistent accumulator (mirrors :class:`CusumDetector`)."""

    def __init__(self, bias: float, threshold: float, norm: float | str = 2):
        self.detector = CusumDetector(bias=bias, threshold=threshold, norm=norm)
        super().__init__(BatchCusum(self.detector, 1))

    @classmethod
    def from_detector(cls, detector: CusumDetector) -> "OnlineCusum":
        """Online wrapper around an offline :class:`CusumDetector`."""
        online = cls.__new__(cls)
        online.detector = detector
        OnlineDetector.__init__(online, BatchCusum(detector, 1))
        return online

    @property
    def statistic(self) -> float:
        """Current value of the accumulated CUSUM statistic."""
        return float(self._core.state["statistic"][0])

    def rebind(self, detector) -> None:
        """Swap bias/threshold; the accumulated statistic is kept."""
        self._core.rebind(detector)
        self.detector = detector

    def as_batch(self, n_instances: int) -> BatchCusum:
        return BatchCusum(self.detector, n_instances)


@DETECTORS.register("online-chi-square")
class OnlineChiSquare(OnlineDetector):
    """Online chi-square detector (mirrors :class:`ChiSquareDetector`)."""

    def __init__(self, innovation_cov: np.ndarray, threshold: float):
        self.detector = ChiSquareDetector(innovation_cov=innovation_cov, threshold=threshold)
        super().__init__(BatchChiSquare(self.detector, 1))

    @classmethod
    def from_detector(cls, detector: ChiSquareDetector) -> "OnlineChiSquare":
        """Online wrapper around an offline :class:`ChiSquareDetector`."""
        online = cls.__new__(cls)
        online.detector = detector
        OnlineDetector.__init__(online, BatchChiSquare(detector, 1))
        return online

    @classmethod
    def from_false_alarm_probability(
        cls, innovation_cov: np.ndarray, false_alarm_probability: float
    ) -> "OnlineChiSquare":
        """Choose the threshold from a target per-sample false-alarm probability."""
        return cls.from_detector(
            ChiSquareDetector.from_false_alarm_probability(
                innovation_cov, false_alarm_probability
            )
        )

    def rebind(self, detector) -> None:
        """Swap in a new chi-square detector (covariance and/or threshold)."""
        self._core.rebind(detector)
        self.detector = detector

    def as_batch(self, n_instances: int) -> BatchChiSquare:
        return BatchChiSquare(self.detector, n_instances)


class OnlineMonitor(OnlineDetector):
    """Online form of a plant monitor (``mdc``); consumes *measurements*.

    Dead-zone members keep their consecutive-violation counters across steps,
    gradient members keep the previous measurement, exactly as the ECU's
    monitoring system would online.
    """

    def __init__(self, monitor: Monitor, dt: float):
        self.monitor = monitor
        self.dt = float(dt)
        super().__init__(BatchMonitor(monitor, dt, 1))

    def rebind(self, monitor) -> None:
        """Swap in a structurally matching monitor; dead-zone counters are kept."""
        self._core.rebind(monitor)
        self.monitor = monitor

    def as_batch(self, n_instances: int) -> BatchMonitor:
        return BatchMonitor(self.monitor, self.dt, n_instances)


def make_online(obj, dt: float | None = None) -> OnlineDetector:
    """Adapt any detector-shaped object into a scalar :class:`OnlineDetector`.

    Accepts a :class:`ThresholdVector`, an offline residue / CUSUM /
    chi-square detector, a plant :class:`Monitor` (requires ``dt``), or an
    existing online wrapper (returned unchanged).
    """
    if isinstance(obj, OnlineDetector):
        return obj
    if isinstance(obj, ThresholdVector):
        return OnlineResidueDetector(obj)
    if isinstance(obj, ResidueDetector):
        return OnlineResidueDetector.from_detector(obj)
    if isinstance(obj, CusumDetector):
        return OnlineCusum.from_detector(obj)
    if isinstance(obj, ChiSquareDetector):
        return OnlineChiSquare.from_detector(obj)
    if isinstance(obj, Monitor):
        if dt is None:
            raise ValidationError("adapting a plant monitor requires the sampling period dt")
        return OnlineMonitor(obj, dt)
    raise ValidationError(
        f"cannot build an online detector from {type(obj).__name__}; expected a "
        "ThresholdVector, detector, Monitor, or online wrapper"
    )


__all__ = [
    "OnlineDetector",
    "OnlineResidueDetector",
    "OnlineCusum",
    "OnlineChiSquare",
    "OnlineMonitor",
    "make_online",
    "make_batched",
]
