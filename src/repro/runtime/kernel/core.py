"""Fused closed-loop stepper: one block matmul per fleet step.

The legacy :class:`~repro.runtime.fleet._BatchStepper` advances ``N``
instances with ~8 separate ``(N, ·)`` matrix products per sampling instance.
This module pre-assembles the per-``(system, estimator, controller)`` update
into a single block matrix ``Mq`` over the stacked state ``Z = [X; Xhat; U]``
(transposed, ``(s, N)`` with ``s = 2n + p``), so each step is **one**
``(q, s) @ (s, N)`` product followed by a handful of elementwise adds:

.. code-block:: text

    rows of P = Mq @ Z:      0..m      C X        (true output)
                             m..2m     C Xhat     (predicted output)
                             2m..2m+n  A X
                             2m+n..+n  A Xhat
                             2m+2n..+n B U
                             [+m]      D U        (only when D is nonzero)

The elementwise tail replicates the legacy update order operation for
operation (same associations, same in-place accumulations), so whenever the
BLAS GEMM reproduces the legacy products bit for bit in this orientation the
float64 fused step is *bit-identical* to the legacy stepper.  Whether that
holds for a concrete ``(system, BLAS)`` pair is decided empirically at run
time by :func:`probe_fused_equivalence` — a cached differential warm-up on
synthetic data — and runs fall back to the legacy stepper when it fails.
Partition stability across worker shards is probed separately by
:func:`repro.runtime.kernel.runner.probe_shard_stability`.

Signed-zero caveat: when ``D == 0`` the legacy stepper still adds an exactly
zero feed-through array, which can flip ``-0.0`` to ``+0.0``; the fused step
skips that add.  The two paths therefore agree under ``np.array_equal``
(value equality, the gate used everywhere) but may differ in the *sign* of
zero entries.  No nonzero value can diverge through this op set.
"""

from __future__ import annotations

import numpy as np

from repro.lti.simulate import ClosedLoopSystem
from repro.utils.rng import ensure_rng

#: Fixed seed of the synthetic differential probe (data-independent verdict).
PROBE_SEED = 20260808

#: Probe horizon: a handful of steps is enough to surface a kernel-dispatch
#: mismatch, and the (cached) probe cost stays negligible against real runs.
PROBE_HORIZON = 8

_PROBE_CACHE: dict[tuple, bool] = {}


class FusedStepper:
    """Advance one contiguous shard of the fleet with a single GEMM per step.

    Operates in transposed orientation: states are columns, so the stacked
    state ``Z`` is ``(2n + p, w)`` for a shard of ``w`` instances and every
    per-step input/output block is ``(m, w)`` / ``(n, w)``.

    Parameters
    ----------
    system:
        The closed loop replicated across the shard.
    x0_T / xhat0_T:
        Initial plant/estimator states, transposed ``(n, w)``.  Copied into
        the stacked state; the dtype of the stepper follows ``dtype``.
    dtype:
        ``np.float64`` (bit-identical mode) or ``np.float32`` (fast mode).
    """

    def __init__(
        self,
        system: ClosedLoopSystem,
        x0_T: np.ndarray,
        xhat0_T: np.ndarray,
        dtype=np.float64,
    ):
        plant = system.plant
        n, m, p = plant.n_states, plant.n_outputs, plant.n_inputs
        dtype = np.dtype(dtype)
        w = x0_T.shape[1]
        self.system = system
        self.n_columns = w
        self._n, self._m, self._p = n, m, p
        self._has_of = plant.D is not None and bool(np.any(plant.D))

        s = 2 * n + p
        q = 2 * m + 3 * n + (m if self._has_of else 0)
        Mq = np.zeros((q, s), dtype=dtype)
        Mq[0:m, 0:n] = plant.C
        Mq[m : 2 * m, n : 2 * n] = plant.C
        self._ax0 = 2 * m
        self._axh0 = 2 * m + n
        self._bu0 = 2 * m + 2 * n
        self._of0 = 2 * m + 3 * n
        Mq[self._ax0 : self._ax0 + n, 0:n] = plant.A
        Mq[self._axh0 : self._axh0 + n, n : 2 * n] = plant.A
        Mq[self._bu0 : self._bu0 + n, 2 * n :] = plant.B
        if self._has_of:
            Mq[self._of0 : self._of0 + m, 2 * n :] = plant.D
        self._Mq = Mq
        self._L = np.ascontiguousarray(system.L, dtype=dtype)
        self._K = np.ascontiguousarray(system.K, dtype=dtype)
        feedforward = system.feedforward @ system.reference
        self._ff = np.ascontiguousarray(feedforward.reshape(-1, 1), dtype=dtype)

        Z = np.zeros((s, w), dtype=dtype)
        Z[0:n] = x0_T
        Z[n : 2 * n] = xhat0_T
        self._Z = Z
        self.X = Z[0:n]
        self.Xhat = Z[n : 2 * n]
        self.U = Z[2 * n :]

        self._P = np.empty((q, w), dtype=dtype)
        self._y = np.empty((m, w), dtype=dtype)
        self._ya = np.empty((m, w), dtype=dtype)
        self._yhat = np.empty((m, w), dtype=dtype) if self._has_of else None
        self._res = np.empty((m, w), dtype=dtype)
        self._resL = np.empty((n, w), dtype=dtype)
        self._KX = np.empty((p, w), dtype=dtype)

    def step(
        self,
        measurement_noise: np.ndarray,
        process_noise: np.ndarray | None,
        attack: np.ndarray | None,
        res_out: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One fused closed-loop iteration for the shard.

        All blocks are transposed ``(m, w)`` / ``(n, w)``.  Returns
        ``(y_true, y_attacked, residues)`` as views into reused buffers —
        callers must copy what they keep.  ``res_out`` (a contiguous
        ``(m, w)`` block) lets callers receive the residues without a copy;
        the same values land there as in the internal buffer.
        """
        m, n = self._m, self._n
        P = self._P
        res = self._res if res_out is None else res_out
        np.matmul(self._Mq, self._Z, out=P)
        if self._has_of:
            of = P[self._of0 : self._of0 + m]
            np.add(P[0:m], of, out=self._y)
            self._y += measurement_noise
        else:
            np.add(P[0:m], measurement_noise, out=self._y)
        if attack is not None:
            np.add(self._y, attack, out=self._ya)
            ya = self._ya
        else:
            ya = self._y
        if self._has_of:
            np.add(P[m : 2 * m], of, out=self._yhat)
            np.subtract(ya, self._yhat, out=res)
        else:
            np.subtract(ya, P[m : 2 * m], out=res)

        np.add(P[self._ax0 : self._ax0 + n], P[self._bu0 : self._bu0 + n], out=self.X)
        if process_noise is not None:
            self.X += process_noise
        np.matmul(self._L, res, out=self._resL)
        np.add(P[self._axh0 : self._axh0 + n], P[self._bu0 : self._bu0 + n], out=self.Xhat)
        self.Xhat += self._resL
        np.matmul(self._K, self.Xhat, out=self._KX)
        np.subtract(self._ff, self._KX, out=self.U)
        return self._y, ya, res


def _system_key(system: ClosedLoopSystem, dtype) -> tuple:
    parts: list = [np.dtype(dtype).str]
    plant = system.plant
    matrices = (
        plant.A,
        plant.B,
        plant.C,
        plant.D,
        system.L,
        system.K,
        system.feedforward,
        system.reference,
    )
    for matrix in matrices:
        array = np.ascontiguousarray(np.asarray(matrix, dtype=float))
        parts.append(array.shape)
        parts.append(array.tobytes())
    return tuple(parts)


def _probe(system: ClosedLoopSystem, n_instances: int, horizon: int) -> bool:
    """Differential warm-up: fused full-width vs legacy stepper, bitwise."""
    from repro.runtime.fleet import _BatchStepper

    plant = system.plant
    n, m = plant.n_states, plant.n_outputs
    N, T = n_instances, horizon
    rng = ensure_rng(PROBE_SEED)
    X0 = rng.standard_normal((N, n))
    Xhat0 = rng.standard_normal((N, n))
    V = rng.standard_normal((T, N, m))
    W = rng.standard_normal((T, N, n))

    # Mirror the engine's width-1 padding: a lone instance rides a zero
    # discard column, exactly as it would in a real fused run.
    pad = N == 1
    cols = 2 if pad else N

    def carve(block: np.ndarray) -> np.ndarray:
        out = np.zeros((block.shape[1], cols))
        out[:, :N] = block.T
        return out

    legacy = _BatchStepper(system, X0.copy(), Xhat0.copy())
    fused = FusedStepper(system, carve(X0), carve(Xhat0))
    for k in range(T):
        y1, ya1, r1 = legacy.step(V[k], W[k], None)
        y2, ya2, r2 = fused.step(carve(V[k]), carve(W[k]), None)
        if not (
            np.array_equal(y1, y2[:, :N].T)
            and np.array_equal(ya1, ya2[:, :N].T)
            and np.array_equal(r1, r2[:, :N].T)
            and np.array_equal(legacy.X, fused.X[:, :N].T)
            and np.array_equal(legacy.Xhat, fused.Xhat[:, :N].T)
            and np.array_equal(legacy.U, fused.U[:, :N].T)
        ):
            return False
    return True


def probe_fused_equivalence(
    system: ClosedLoopSystem, dtype=np.float64, n_instances: int = 64
) -> bool:
    """Decide (and cache) whether the fused float64 path is safe for ``system``.

    The fused step is algebraically identical to the legacy stepper, but
    bit-identity additionally requires the BLAS GEMM to produce the exact
    same floats in the fused (transposed, block-stacked) orientation.  That
    is a property of the installed BLAS, the concrete matrix shapes *and the
    fleet width* (kernel dispatch can differ per operand width), so it is
    checked *empirically* at the actual width: a short synthetic run (fixed
    seed, data-independent of the real fleet, ``n_instances`` columns wide)
    compares the fused stepper against the legacy stepper with
    ``np.array_equal`` on every step's outputs and states.

    Returns ``True`` when every probed quantity matched; the fused engine
    then uses the fused stepper, otherwise it falls back to the legacy
    stepper (still bit-identical).  ``float32`` always returns ``True``: the
    fast mode has no bit-identity contract — the fused kernel *defines* that
    path.  Verdicts are cached per ``(system matrices, dtype, width)``.
    Whether the run may additionally be *partitioned* across workers is a
    separate empirical question answered by
    :func:`repro.runtime.kernel.runner.probe_shard_stability`.
    """
    if np.dtype(dtype) == np.float32:
        return True
    key = _system_key(system, dtype) + (int(n_instances),)
    cached = _PROBE_CACHE.get(key)
    if cached is None:
        cached = _PROBE_CACHE[key] = _probe(system, int(n_instances), PROBE_HORIZON)
    return cached


__all__ = ["FusedStepper", "probe_fused_equivalence", "PROBE_SEED"]
