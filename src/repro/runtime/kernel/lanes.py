"""Detector lanes: the fleet detector bank folded over pre-stacked residues.

The legacy fleet loop calls every :class:`~repro.runtime.batch.BatchDetector`
once per step on an ``(N, m)`` block.  The fused engine instead records the
whole horizon's residues (and, when needed, measurements) as transposed
``(T, m, N)`` stacks during the state recursion and then runs each detector
as a *lane* over the stack:

* :class:`ThresholdLane` — fully vectorized: one ``(T, N)`` norm block and a
  single broadcast comparison against the per-step threshold vector.
* :class:`CusumLane` — vectorized norms, then the 3-op per-step recurrence
  ``S = max(0, S + ||z|| - bias)`` (the clamp makes it inherently serial).
* :class:`GenericLane` — any other core (chi-square, plant monitors, custom
  detectors): stepped per sample on a C-contiguous float64 copy of the
  block, exactly the layout the legacy loop feeds it.

Exactness contract (float64): every inline expression replicates the numpy
ops of the legacy path operation for operation — ``np.max(np.abs(·))`` over
the channel axis for the infinity norm, ``sqrt(x0*x0 [+ x1*x1])`` /
``abs(x0) [+ abs(x1)]`` for the 2-/1-norms at ``m <= 2`` (the expansions of
``np.linalg.norm``'s reductions), the same weighted division, and the same
threshold/CUSUM comparisons — so lane alarms are bit-identical to the legacy
per-step calls.  Anything outside that envelope (``m > 2`` p-norms,
non-lockstep step counters) silently routes through :class:`GenericLane`,
which is bit-identical by construction.

In float32 fast mode the residue stack is float32; lane *state* (CUSUM
accumulators, step counters) and comparisons stay float64 via numpy's exact
float32→float64 promotion, so the only divergence channel versus float64 is
residue rounding itself.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.threshold import ALARM_TOLERANCE
from repro.runtime.batch import BatchCusum, BatchDetector, BatchThresholdDetector


def _norms_block(res: np.ndarray, norm, weights) -> np.ndarray | None:
    """Vectorized ``(T, N)`` residue norms over a ``(T, m, N)`` stack.

    Returns ``None`` when the norm cannot be replicated exactly inline
    (callers then fall back to the generic per-step path).
    """
    m = res.shape[1]
    if norm not in ("inf", 1, 2):
        return None
    if norm != "inf" and m > 2:
        return None
    rw = res if weights is None else res / weights[None, :, None]
    if norm == "inf":
        # A single channel makes the max a pass-through — same bits, one
        # fewer full-stack reduction.
        return np.abs(rw[:, 0, :]) if m == 1 else np.max(np.abs(rw), axis=1)
    if m == 1:
        r0 = rw[:, 0, :]
        if norm != 2:
            return np.abs(r0)
        squared = r0 * r0
        return np.sqrt(squared, out=squared)
    r0 = rw[:, 0, :]
    r1 = rw[:, 1, :]
    if norm == 2:
        summed = r0 * r0
        summed += r1 * r1
        return np.sqrt(summed, out=summed)
    total = np.abs(r0)
    total += np.abs(r1)
    return total


def _generic_alarms(core: BatchDetector, src: np.ndarray) -> np.ndarray:
    """Step ``core`` over a ``(T, m, N)`` stack exactly like the legacy loop."""
    T, N = src.shape[0], src.shape[2]
    out = np.empty((T, N), dtype=bool)
    for k in range(T):
        out[k] = core.step(np.ascontiguousarray(src[k].T, dtype=np.float64))
    return out


class DetectorLane:
    """Base lane: wraps one core; default behaviour is the generic path."""

    def __init__(self, core: BatchDetector):
        self.core = core
        self._consumed = 0

    @property
    def consumes(self) -> str:
        """Which stack the lane reads: ``"residues"`` or ``"measurements"``."""
        return self.core.consumes

    def alarms(self, res: np.ndarray, measurements: np.ndarray | None) -> np.ndarray:
        """``(T, N)`` alarm flags over the whole horizon."""
        src = res if self.core.consumes == "residues" else measurements
        return _generic_alarms(self.core, src)

    def finalize(self) -> None:
        """Write inline-advanced state back into the core (no-op when generic)."""


class GenericLane(DetectorLane):
    """Per-step fallback lane: correct for every :class:`BatchDetector`."""


class ThresholdLane(DetectorLane):
    """Vectorized lane for :class:`BatchThresholdDetector` (fleet lockstep)."""

    def alarms(self, res: np.ndarray, measurements: np.ndarray | None) -> np.ndarray:
        core = self.core
        vector = core.threshold
        # Inline evaluation assumes the whole fleet shares one threshold
        # timeline (true after the engine's reset); otherwise fall through.
        if np.any(core._steps):
            return _generic_alarms(core, res)
        norms = _norms_block(res, vector.norm, vector.weights)
        if norms is None:
            return _generic_alarms(core, res)
        T = res.shape[0]
        index = np.minimum(np.arange(T), vector.length - 1)
        adjusted = vector.values[index] - ALARM_TOLERANCE
        self._consumed = T
        out = np.empty(norms.shape, dtype=bool)
        np.greater_equal(norms, adjusted[:, None], out=out)
        return out

    def finalize(self) -> None:
        if self._consumed:
            self.core._steps += self._consumed
            self.core._step_index += self._consumed


class CusumLane(DetectorLane):
    """Vectorized-norm lane for :class:`BatchCusum`."""

    def __init__(self, core: BatchCusum):
        super().__init__(core)
        self._statistic: np.ndarray | None = None

    def alarms(self, res: np.ndarray, measurements: np.ndarray | None) -> np.ndarray:
        detector = self.core.detector
        norms = _norms_block(res, detector.norm, None)
        if norms is None:
            return _generic_alarms(self.core, res)
        T, N = norms.shape
        out = np.empty((T, N), dtype=bool)
        statistic = np.array(self.core._statistic, dtype=np.float64)
        scratch = np.empty(N, dtype=np.float64)
        for k in range(T):
            np.add(statistic, norms[k], out=scratch)
            np.subtract(scratch, detector.bias, out=scratch)
            np.maximum(0.0, scratch, out=statistic)
            np.greater_equal(statistic, detector.threshold, out=out[k])
        self._statistic = statistic
        self._consumed = T
        return out

    def finalize(self) -> None:
        if self._consumed:
            self.core._statistic = self._statistic
            self.core._step_index += self._consumed


def build_lane(core: BatchDetector) -> DetectorLane:
    """The fastest exact lane for ``core``."""
    if type(core) is BatchThresholdDetector:
        return ThresholdLane(core)
    if type(core) is BatchCusum:
        return CusumLane(core)
    return GenericLane(core)


def build_lanes(cores: dict[str, BatchDetector]) -> dict[str, DetectorLane]:
    """One lane per deployed detector, in bank order."""
    return {label: build_lane(core) for label, core in cores.items()}


__all__ = [
    "DetectorLane",
    "ThresholdLane",
    "CusumLane",
    "GenericLane",
    "build_lane",
    "build_lanes",
]
