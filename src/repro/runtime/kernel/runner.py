"""Fleet execution engines: ``legacy`` (streaming) and ``fused`` (kernel).

Engines are the registry-resolved execution strategies behind
:class:`~repro.runtime.fleet.FleetSimulator`, :func:`~repro.runtime.fleet.
batch_simulate`, the FAR evaluator and :class:`~repro.serve.service.
MonitorService` rounds:

* :class:`LegacyEngine` (``engine="legacy"``, the default) — the original
  per-step ``(N, ·)`` pipeline, streaming and ``O(N)`` in memory.
* :class:`FusedEngine` (``engine="fused"``) — the fused kernel of
  :mod:`repro.runtime.kernel.core`: one GEMM per step per shard, detector
  lanes over pre-stacked residues, optional ``dtype="float32"`` fast mode
  and ``workers=k`` shard-across-cores execution.

Sharding contract: instances are carved into *contiguous index ranges*
(never interleaved, never by draw order) so every per-instance stream —
noise, initial states, attacks, recorded traces — is a column slice of the
same central draw.  Width-1 shards are padded with one zero discard column
to keep the BLAS on its GEMM path.  Detector lanes and alarm bookkeeping
always run full-width on the main thread after the sharded state recursion,
so alarm event ordering is independent of ``workers`` by construction.
Because a BLAS GEMM need not be invariant under column partitioning, a run
with ``workers > 1`` first consults :func:`probe_shard_stability` — a cached
differential probe of the engine's own shard path against the unsharded
recursion — and clamps to a single shard when partitioning would perturb any
bit.  Sharded and unsharded runs are therefore bit-identical *always*:
empirically when the BLAS cooperates, by construction when it does not.

Equivalence gate: each fused float64 run first consults
:func:`~repro.runtime.kernel.core.probe_fused_equivalence`; a failed probe
downgrades the state recursion (per shard) to the legacy stepper while
keeping the lane/bookkeeping machinery — bit-identical output either way.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Mapping, Sequence

import numpy as np

from repro.obs.clock import Stopwatch
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.registry import ENGINES
from repro.runtime.batch import BatchDetector
from repro.runtime.events import AlarmEvent
from repro.runtime.kernel.core import (
    PROBE_SEED,
    FusedStepper,
    _system_key,
    probe_fused_equivalence,
)
from repro.runtime.kernel.lanes import build_lanes
from repro.runtime.kernel.serve import FusedServicePlan
from repro.runtime.report import FleetReport, build_detector_stats
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import ValidationError

_DTYPES = {"float64": np.float64, "float32": np.float32}


def _shard_bounds(n_instances: int, workers: int) -> list[tuple[int, int]]:
    """Contiguous ``[lo, hi)`` instance ranges, one per worker."""
    workers = max(1, min(int(workers), n_instances))
    base, extra = divmod(n_instances, workers)
    bounds = []
    lo = 0
    for index in range(workers):
        hi = lo + base + (1 if index < extra else 0)
        if hi > lo:
            bounds.append((lo, hi))
        lo = hi
    return bounds


#: Shard-stability probe horizon: a handful of steps surfaces any
#: width-dependent kernel dispatch; the (cached) probe runs at the actual
#: fleet width and worker layout, so its verdict covers the real run.
_SHARD_PROBE_HORIZON = 8

_SHARD_STABILITY_CACHE: dict[tuple, bool] = {}


def _probe_shards(
    system, dtype: str, fused_ok: bool, n_instances: int, workers: int
) -> bool:
    """Differential check: the engine's sharded recursion vs one full shard."""
    plant = system.plant
    n, m, p = plant.n_states, plant.n_outputs, plant.n_inputs
    N, T = n_instances, _SHARD_PROBE_HORIZON
    rng = ensure_rng(PROBE_SEED)
    X0 = rng.standard_normal((N, n))
    Xhat0 = rng.standard_normal((N, n))
    V = rng.standard_normal((N, T, m))
    W = rng.standard_normal((N, T, n))
    engine = FusedEngine(dtype=dtype, workers=1)

    def run(n_workers: int):
        res = np.empty((T, m, N), dtype=_DTYPES[dtype])
        ya = np.empty((T, m, N), dtype=_DTYPES[dtype])
        recorder = {
            "states": np.zeros((N, T + 1, n)),
            "estimates": np.zeros((N, T + 1, n)),
            "inputs": np.zeros((N, T + 1, p)),
            "measurements": np.zeros((N, T, m)),
            "true_outputs": np.zeros((N, T, m)),
            "residues": np.zeros((N, T, m)),
        }
        recorder["states"][:, 0] = X0
        recorder["estimates"][:, 0] = Xhat0
        Vt, Wt, _ = engine._transpose_streams(V, W, None)
        engine._simulate(
            system,
            X0,
            Xhat0,
            Vt,
            Wt,
            None,
            None,
            fused_ok=fused_ok,
            workers=n_workers,
            res_out=res,
            ya_out=ya,
            recorder=recorder,
        )
        return res, ya, recorder

    ref_res, ref_ya, ref_recorder = run(1)
    res, ya, recorder = run(workers)
    if not (np.array_equal(res, ref_res) and np.array_equal(ya, ref_ya)):
        return False
    for name, reference in ref_recorder.items():
        if not np.array_equal(recorder[name], reference):
            return False
    return True


def probe_shard_stability(
    system, dtype: str, fused_ok: bool, n_instances: int, workers: int
) -> bool:
    """Decide (and cache) whether shard partitioning preserves every bit.

    A BLAS GEMM may pick different kernels (and different accumulation
    orders) for different operand widths, so carving the fleet into
    per-worker column blocks can perturb low-order bits relative to the
    unsharded run — for the fused *and* for the legacy-fallback stepper.
    Because the dispatch depends on the concrete widths, this probe runs the
    engine's own shard machinery at the *actual* fleet width and worker
    layout (width-1 padding included) on synthetic data and compares every
    recorded quantity bitwise against a single full-width shard.

    The engines consult it only when ``workers > 1``; a ``False`` verdict
    clamps the run to one shard, so sharded configurations remain
    bit-identical to unsharded ones on every BLAS.  Verdicts are cached per
    ``(system matrices, dtype, chosen stepper, width, workers)``.
    """
    key = (
        _system_key(system, _DTYPES[dtype]),
        "shards",
        bool(fused_ok),
        int(n_instances),
        int(workers),
    )
    cached = _SHARD_STABILITY_CACHE.get(key)
    if cached is None:
        cached = _SHARD_STABILITY_CACHE[key] = _probe_shards(
            system, dtype, fused_ok, int(n_instances), int(workers)
        )
    return cached


class _FusedShard:
    """One shard advanced by the fused stepper (transposed orientation)."""

    def __init__(self, system, x0_t, xhat0_t, dtype):
        self._stepper = FusedStepper(system, x0_t, xhat0_t, dtype=dtype)

    def step(self, vk, wk, att, res_out=None):
        return self._stepper.step(vk, wk, att, res_out=res_out)

    @property
    def X(self):
        return self._stepper.X

    @property
    def Xhat(self):
        return self._stepper.Xhat

    @property
    def U(self):
        return self._stepper.U


class _LegacyShard:
    """Probe-fallback shard: the legacy stepper behind the fused interface."""

    def __init__(self, system, x0_t, xhat0_t):
        from repro.runtime.fleet import _BatchStepper

        self._stepper = _BatchStepper(system, x0_t.T.copy(), xhat0_t.T.copy())

    def step(self, vk, wk, att, res_out=None):
        y, ya, res = self._stepper.step(
            vk.T,
            None if wk is None else wk.T,
            None if att is None else att.T,
        )
        return y.T, ya.T, res.T

    @property
    def X(self):
        return self._stepper.X.T

    @property
    def Xhat(self):
        return self._stepper.Xhat.T

    @property
    def U(self):
        return self._stepper.U.T


@ENGINES.register("legacy")
class LegacyEngine:
    """The original streaming fleet execution path (the default engine).

    Delegates straight to the per-step ``(N, ·)`` numpy pipeline of
    :mod:`repro.runtime.fleet` and :mod:`repro.runtime.batch`; it is the
    bit-for-bit reference every fused run is gated against.
    """

    name = "legacy"

    def run_fleet(self, sim) -> FleetReport:
        """Run a :class:`~repro.runtime.fleet.FleetSimulator` to completion."""
        return sim._run()

    def batch_trace(
        self, system, horizon, X0, Xhat0, V, W, A, has_process_noise, has_attack
    ):
        """The :func:`~repro.runtime.fleet.batch_simulate` recording loop."""
        from repro.runtime.fleet import FleetTrace, _BatchStepper

        plant = system.plant
        N, T = X0.shape[0], int(horizon)
        n, m, p = plant.n_states, plant.n_outputs, plant.n_inputs
        stepper = _BatchStepper(system, X0, Xhat0)
        states = np.zeros((N, T + 1, n))
        estimates = np.zeros((N, T + 1, n))
        inputs = np.zeros((N, T + 1, p))
        measurements = np.zeros((N, T, m))
        true_outputs = np.zeros((N, T, m))
        residues = np.zeros((N, T, m))

        states[:, 0] = stepper.X
        estimates[:, 0] = stepper.Xhat
        inputs[:, 0] = stepper.U

        for k in range(T):
            y_true, y_attacked, z = stepper.step(
                V[:, k],
                W[:, k] if has_process_noise else None,
                A[:, k] if has_attack else None,
            )
            true_outputs[:, k] = y_true
            measurements[:, k] = y_attacked
            residues[:, k] = z
            states[:, k + 1] = stepper.X
            estimates[:, k + 1] = stepper.Xhat
            inputs[:, k + 1] = stepper.U

        return FleetTrace(
            states=states,
            estimates=estimates,
            inputs=inputs,
            measurements=measurements,
            true_outputs=true_outputs,
            residues=residues,
            attacks=A,
            process_noise=W,
            measurement_noise=V,
            dt=system.dt,
            metadata={"system": system.name},
        )

    def service_round(
        self,
        cores: Mapping[str, BatchDetector],
        residues: np.ndarray,
        measurements: np.ndarray,
    ) -> dict[str, np.ndarray]:
        """Step every deployed core once; label → ``(N,)`` alarms, bank order."""
        return {
            label: core.step(
                residues if core.consumes == "residues" else measurements
            )
            for label, core in cores.items()
        }


@ENGINES.register("fused")
class FusedEngine:
    """The fused fleet kernel (``engine="fused"``): opt-in fast path.

    Parameters
    ----------
    dtype:
        ``"float64"`` (default) — gated bit-identical to the legacy engine —
        or ``"float32"`` — the fast mode, with no bit-identity contract (see
        ``docs/runtime-kernel.md`` for the documented accuracy envelope).
    workers:
        Number of shard threads for the state recursion.  Instances are
        carved into contiguous index ranges; numpy releases the GIL inside
        GEMM, so threads scale on multi-core hosts.  Results are
        ``workers``-independent bit for bit.
    """

    name = "fused"

    def __init__(self, dtype: str = "float64", workers: int = 1):
        if dtype not in _DTYPES:
            raise ValidationError(
                f"fused engine dtype must be one of {sorted(_DTYPES)}, got {dtype!r}"
            )
        workers = int(workers)
        if workers < 1:
            raise ValidationError("fused engine workers must be a positive integer")
        self.dtype = dtype
        self.workers = workers
        self._service_plan: FusedServicePlan | None = None

    # ------------------------------------------------------------------
    def _transpose_streams(
        self,
        V: np.ndarray,
        W: np.ndarray | None,
        dense_attacks: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray | None, np.ndarray | None]:
        """Instance-major ``(N, T, ·)`` draws → contiguous ``(T, ·, N)`` stacks.

        Pure layout preparation (element values are untouched), done once per
        run before the measured stepping window — the legacy engine's window
        likewise starts after its inputs are materialized.
        """
        dt_np = _DTYPES[self.dtype]
        Vt = np.ascontiguousarray(V.transpose(1, 2, 0), dtype=dt_np)
        Wt = (
            None
            if W is None
            else np.ascontiguousarray(W.transpose(1, 2, 0), dtype=dt_np)
        )
        At = (
            None
            if dense_attacks is None
            else np.ascontiguousarray(dense_attacks.transpose(1, 2, 0), dtype=dt_np)
        )
        return Vt, Wt, At

    # ------------------------------------------------------------------
    def _simulate(
        self,
        system,
        X0: np.ndarray,
        Xhat0: np.ndarray,
        Vt: np.ndarray,
        Wt: np.ndarray | None,
        schedule: Sequence[tuple[np.ndarray, np.ndarray]] | None,
        At: np.ndarray | None,
        *,
        fused_ok: bool,
        workers: int,
        res_out: np.ndarray | None,
        ya_out: np.ndarray | None,
        recorder: dict | None,
    ) -> None:
        """Sharded state recursion over the whole horizon.

        Consumes the transposed ``(T, ·, N)`` stacks of
        :meth:`_transpose_streams` — one *central* draw, so shard boundaries
        never move the random streams — and writes transposed residue/
        measurement stacks and/or the instance-major recorder arrays.
        """
        plant = system.plant
        n, m = plant.n_states, plant.n_outputs
        N = X0.shape[0]
        T = Vt.shape[0]
        dt_np = _DTYPES[self.dtype]

        bounds = _shard_bounds(N, workers)
        sharded = len(bounds) > 1

        def run_shard(bound: tuple[int, int]) -> None:
            lo, hi = bound
            width = hi - lo
            # Width-1 shards ride a zero discard column: keeps the BLAS on
            # its (partition-invariant) GEMM path instead of GEMV.  The
            # legacy fallback only needs the pad when actually sharded — a
            # single full-fleet legacy shard IS the reference computation.
            pad = width == 1 and (fused_ok or sharded)
            cols = 2 if pad else width

            def carve(block_t):
                if block_t is None:
                    return None
                if not pad:
                    return np.ascontiguousarray(block_t[:, :, lo:hi])
                padded = np.zeros(block_t.shape[:2] + (cols,), dtype=block_t.dtype)
                padded[:, :, :width] = block_t[:, :, lo:hi]
                return padded

            x0_t = np.zeros((n, cols), dtype=dt_np)
            x0_t[:, :width] = X0[lo:hi].T
            xh0_t = np.zeros((n, cols), dtype=dt_np)
            xh0_t[:, :width] = Xhat0[lo:hi].T
            if fused_ok:
                shard = _FusedShard(system, x0_t, xh0_t, dt_np)
            else:
                shard = _LegacyShard(system, x0_t, xh0_t)

            Vs = carve(Vt)
            Ws = carve(Wt)
            As = carve(At)
            if schedule is not None:
                # Pre-stack the schedule into one dense (T, m, cols) block:
                # each (step, instance) cell receives the same entry-ordered
                # accumulation the legacy per-step build performs.
                As = np.zeros((T, m, cols), dtype=dt_np)
                for indices, values in schedule:
                    inside = (indices >= lo) & (indices < hi)
                    As[:, :, indices[inside] - lo] += values[:, :, None]

            att = None
            # A lone full-width fused shard can emit residues straight into
            # the stack row (contiguous, same layout as the internal buffer).
            direct_res = res_out is not None and fused_ok and not pad and width == N
            for k in range(T):
                if As is not None:
                    att = As[k]
                y, ya, res = shard.step(
                    Vs[k],
                    None if Ws is None else Ws[k],
                    att,
                    res_out=res_out[k] if direct_res else None,
                )
                if res_out is not None and not direct_res:
                    res_out[k, :, lo:hi] = res[:, :width]
                if ya_out is not None:
                    ya_out[k, :, lo:hi] = ya[:, :width]
                if recorder is not None:
                    recorder["true_outputs"][lo:hi, k] = y[:, :width].T
                    recorder["measurements"][lo:hi, k] = ya[:, :width].T
                    recorder["residues"][lo:hi, k] = res[:, :width].T
                    if att is not None and "attacks" in recorder:
                        recorder["attacks"][lo:hi, k] = att[:, :width].T
                    recorder["states"][lo:hi, k + 1] = shard.X[:, :width].T
                    recorder["estimates"][lo:hi, k + 1] = shard.Xhat[:, :width].T
                    recorder["inputs"][lo:hi, k + 1] = shard.U[:, :width].T

        if not sharded:
            run_shard(bounds[0])
        else:
            with ThreadPoolExecutor(max_workers=len(bounds)) as pool:
                list(pool.map(run_shard, bounds))

    # ------------------------------------------------------------------
    def run_fleet(self, sim) -> FleetReport:
        """Fused replica of the legacy fleet run (same report, same events)."""
        plant = sim.system.plant
        T, N = sim.horizon, sim.n_instances
        n, m, p = plant.n_states, plant.n_outputs, plant.n_inputs

        rngs = spawn_rngs(sim.seed, N + 1)
        scheduler_rng = ensure_rng(rngs[-1])
        V, W, X0 = sim._draw_streams(rngs[:N])
        schedule = sim._resolve_schedule(scheduler_rng)

        attacked_mask = np.zeros(N, dtype=bool)
        attack_start = np.full(N, T, dtype=int)
        for (indices, values), entry in zip(schedule, sim.attacks):
            if indices.size and np.any(values):
                attacked_mask[indices] = True
                attack_start[indices] = np.minimum(attack_start[indices], entry.start)

        for detector in sim.detectors.values():
            detector.reset()
        lanes = build_lanes(sim.detectors)

        first_alarm = {label: np.full(N, -1, dtype=int) for label in sim.detectors}
        first_detection = {label: np.full(N, -1, dtype=int) for label in sim.detectors}
        alarm_counts = {label: 0 for label in sim.detectors}
        benign_alarm_steps = {label: 0 for label in sim.detectors}
        benign_mask = ~attacked_mask

        recorder = None
        if sim.record_traces:
            recorder = {
                "states": np.zeros((N, T + 1, n)),
                "estimates": np.zeros((N, T + 1, n)),
                "inputs": np.zeros((N, T + 1, p)),
                "measurements": np.zeros((N, T, m)),
                "true_outputs": np.zeros((N, T, m)),
                "residues": np.zeros((N, T, m)),
                "attacks": np.zeros((N, T, m)),
            }
            recorder["states"][:, 0] = X0
            recorder["estimates"][:, 0] = sim.xhat0

        registry = None
        alarms_counter = None
        fused_ok = probe_fused_equivalence(sim.system, _DTYPES[self.dtype], N)
        workers_eff = max(1, min(self.workers, N))
        shard_stable = True
        if workers_eff > 1:
            shard_stable = probe_shard_stability(
                sim.system, self.dtype, fused_ok, N, workers_eff
            )
            if not shard_stable:
                workers_eff = 1
        if sim.metrics is not False:
            registry = (
                sim.metrics
                if isinstance(sim.metrics, MetricsRegistry)
                else get_registry()
            )
            alarms_counter = registry.counter(
                "fleet_alarms_total", help="Detector alarms fired during fleet runs."
            )
            registry.counter(
                "fleet_kernel_runs_total",
                help="Fused-engine fleet runs by dtype and chosen path.",
            ).inc(
                dtype=self.dtype,
                path="fused" if fused_ok else "legacy-shards",
                workers=str(workers_eff),
            )

        needs_measurements = any(
            lane.consumes != "residues" for lane in lanes.values()
        )

        Vt, Wt, _ = self._transpose_streams(V, W, None)
        started = Stopwatch()
        dt_np = _DTYPES[self.dtype]
        res_stack = np.empty((T, m, N), dtype=dt_np)
        ya_stack = np.empty((T, m, N), dtype=dt_np) if needs_measurements else None
        self._simulate(
            sim.system,
            X0,
            sim.xhat0.copy(),
            Vt,
            Wt,
            schedule if schedule else None,
            None,
            fused_ok=fused_ok,
            workers=workers_eff,
            res_out=res_stack,
            ya_out=ya_stack,
            recorder=recorder,
        )

        lane_alarms = {
            label: lane.alarms(res_stack, ya_stack) for label, lane in lanes.items()
        }
        for lane in lanes.values():
            lane.finalize()

        if not sim.sinks and sim.scraper is None:
            # No step-ordered consumers: fold the whole horizon's bookkeeping
            # into vectorized reductions (identical counts, first-alarm and
            # first-detection indices, and final counter values).
            step_axis = np.arange(T)
            for label in lanes:
                alarms = lane_alarms[label]
                total = int(np.count_nonzero(alarms))
                if not total:
                    continue
                alarm_counts[label] = total
                if alarms_counter is not None:
                    alarms_counter.inc(total, detector=label)
                benign_alarm_steps[label] = int(
                    np.count_nonzero(alarms & benign_mask[None, :])
                )
                any_alarm = alarms.any(axis=0)
                first_alarm[label][any_alarm] = alarms.argmax(axis=0)[any_alarm]
                detected = (
                    alarms
                    & attacked_mask[None, :]
                    & (step_axis[:, None] >= attack_start[None, :])
                )
                any_detected = detected.any(axis=0)
                first_detection[label][any_detected] = detected.argmax(axis=0)[
                    any_detected
                ]
        else:
            for k in range(T):
                for label in lanes:
                    alarms = lane_alarms[label][k]
                    fired = int(np.count_nonzero(alarms))
                    if not fired:
                        continue
                    alarm_counts[label] += fired
                    if alarms_counter is not None:
                        alarms_counter.inc(fired, detector=label)
                    benign_alarm_steps[label] += int(
                        np.count_nonzero(alarms & benign_mask)
                    )
                    newly = alarms & (first_alarm[label] < 0)
                    first_alarm[label][newly] = k
                    detected = (
                        alarms
                        & attacked_mask
                        & (k >= attack_start)
                        & (first_detection[label] < 0)
                    )
                    first_detection[label][detected] = k
                    if sim.sinks:
                        events = [
                            AlarmEvent(int(i), k, label, first=bool(newly[i]))
                            for i in np.flatnonzero(alarms)
                        ]
                        for sink in sim.sinks:
                            sink.emit(events)
                if sim.scraper is not None:
                    sim.scraper.maybe_scrape()
        elapsed = started.elapsed()

        if registry is not None:
            registry.counter(
                "fleet_steps_total", help="Instance-steps executed by fleet runs."
            ).inc(N * T)
            registry.counter(
                "fleet_runs_total", help="Completed FleetSimulator.run calls."
            ).inc()
            registry.histogram(
                "fleet_run_seconds", help="Wall time per FleetSimulator.run call."
            ).observe(elapsed, system=sim.system.name)
            if elapsed > 0:
                registry.gauge(
                    "fleet_throughput_steps_per_s",
                    help="Instance-steps per second of the last fleet run.",
                ).set(N * T / elapsed, system=sim.system.name)

        if sim.scraper is not None:
            sim.scraper.scrape()

        if recorder is not None:
            from repro.runtime.fleet import FleetTrace

            sim.trace = FleetTrace(
                **recorder,
                process_noise=W if W is not None else np.zeros((N, T, n)),
                measurement_noise=V,
                dt=sim.system.dt,
                metadata={"system": sim.system.name},
            )

        report = FleetReport(
            n_instances=N,
            horizon=T,
            n_attacked=int(np.sum(attacked_mask)),
            elapsed_seconds=elapsed,
            metadata={
                "system": sim.system.name,
                "seed": sim.seed,
                "engine": {
                    "name": self.name,
                    "dtype": self.dtype,
                    "workers": workers_eff,
                    "fused_path": bool(fused_ok),
                    "shard_stable": bool(shard_stable),
                },
                "attacks": [
                    {
                        "label": entry.label or f"attack-{index}",
                        "start": entry.start,
                        "instances": int(indices.size),
                        "template": type(entry.template).__name__,
                    }
                    for index, ((indices, _), entry) in enumerate(
                        zip(schedule, sim.attacks)
                    )
                ],
            },
        )
        for label in sim.detectors:
            report.detectors[label] = build_detector_stats(
                label=label,
                first_alarm=first_alarm[label],
                first_detection=first_detection[label],
                alarm_count=alarm_counts[label],
                benign_alarm_steps=benign_alarm_steps[label],
                attacked_mask=attacked_mask,
                attack_start=attack_start,
                horizon=T,
            )
        return report

    # ------------------------------------------------------------------
    def batch_trace(
        self, system, horizon, X0, Xhat0, V, W, A, has_process_noise, has_attack
    ):
        """Fused replica of the :func:`batch_simulate` recording loop."""
        from repro.runtime.fleet import FleetTrace

        plant = system.plant
        N, T = X0.shape[0], int(horizon)
        n, m, p = plant.n_states, plant.n_outputs, plant.n_inputs
        fused_ok = probe_fused_equivalence(system, _DTYPES[self.dtype], N)
        workers_eff = max(1, min(self.workers, N))
        if workers_eff > 1 and not probe_shard_stability(
            system, self.dtype, fused_ok, N, workers_eff
        ):
            workers_eff = 1

        recorder = {
            "states": np.zeros((N, T + 1, n)),
            "estimates": np.zeros((N, T + 1, n)),
            "inputs": np.zeros((N, T + 1, p)),
            "measurements": np.zeros((N, T, m)),
            "true_outputs": np.zeros((N, T, m)),
            "residues": np.zeros((N, T, m)),
        }
        recorder["states"][:, 0] = X0
        recorder["estimates"][:, 0] = Xhat0

        Vt, Wt, At = self._transpose_streams(
            V, W if has_process_noise else None, A if has_attack else None
        )
        self._simulate(
            system,
            X0,
            Xhat0,
            Vt,
            Wt,
            None,
            At,
            fused_ok=fused_ok,
            workers=workers_eff,
            res_out=None,
            ya_out=None,
            recorder=recorder,
        )
        return FleetTrace(
            **recorder,
            attacks=A,
            process_noise=W,
            measurement_noise=V,
            dt=system.dt,
            metadata={"system": system.name},
        )

    # ------------------------------------------------------------------
    def service_round(
        self,
        cores: Mapping[str, BatchDetector],
        residues: np.ndarray,
        measurements: np.ndarray,
    ) -> dict[str, np.ndarray]:
        """One fused service round: shared norms over a version-keyed plan."""
        key = FusedServicePlan.cache_key(cores)
        plan = self._service_plan
        if plan is None or plan.key != key:
            plan = self._service_plan = FusedServicePlan(cores)
        return plan.round(residues, measurements)


__all__ = ["LegacyEngine", "FusedEngine", "probe_shard_stability"]
