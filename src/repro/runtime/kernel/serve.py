"""Fused monitor-service rounds: version-keyed plans over the detector bank.

A :class:`~repro.serve.service.MonitorService` round steps every deployed
core on one ``(N, m)`` residue/measurement block.  The fused plan
pre-inspects the bank once and then, per round:

* computes each distinct residue-norm *signature* ``(norm, weights)`` only
  once and shares the resulting ``(N,)`` norm vector across every threshold
  and CUSUM core with that signature,
* applies threshold comparisons with the *per-instance* step index (service
  instances attach mid-run, so unlike the fleet lanes there is no lockstep
  assumption), mutating the cores' own counters/accumulators in place,
* steps anything else (chi-square, plant monitors, custom cores) directly.

All detector state lives in the cores, never in the plan, so rebuilding the
plan can never reset a surviving instance.  The plan is keyed on each core's
``version`` counter (see :class:`~repro.runtime.batch.BatchDetector`):
``grow``/``compact`` (attach/detach) and ``rebind`` (threshold hot-swap)
bump it, which invalidates the cached stacks and rebuilds them against the
new membership/parameters — the fix for the latent grow-mid-run edge where a
fused service would otherwise keep applying stale pre-stacked matrices.

Norm values are computed by the detectors' *own* expressions
(:meth:`ThresholdVector.residue_norms` / :meth:`CusumDetector._norms`), so a
fused round is bit-identical to stepping the cores one by one.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.detectors.threshold import alarm_comparison
from repro.runtime.batch import BatchCusum, BatchDetector, BatchThresholdDetector


class FusedServicePlan:
    """Pre-inspected execution plan for one detector-bank composition."""

    def __init__(self, cores: Mapping[str, BatchDetector]):
        self.key = self.cache_key(cores)
        self._norm_specs: list[tuple[tuple, object]] = []
        self._steps: list[tuple[str, str, tuple]] = []
        for label, core in cores.items():
            if type(core) is BatchThresholdDetector:
                vector = core.threshold
                index = self._norm_index(vector.norm, vector.weights, vector)
                self._steps.append(
                    ("threshold", label, (core, vector.values, vector.length, index))
                )
            elif type(core) is BatchCusum:
                detector = core.detector
                index = self._norm_index(detector.norm, None, detector)
                self._steps.append(
                    ("cusum", label, (core, detector.bias, detector.threshold, index))
                )
            else:
                self._steps.append(("generic", label, (core,)))

    @staticmethod
    def cache_key(cores: Mapping[str, BatchDetector]) -> tuple:
        """Plan identity: bank labels plus every core's cache epoch."""
        return tuple((label, core.version) for label, core in cores.items())

    def _norm_index(self, norm, weights, computer) -> int:
        signature = (norm, None if weights is None else weights.tobytes())
        for index, (existing, _) in enumerate(self._norm_specs):
            if existing == signature:
                return index
        self._norm_specs.append((signature, computer))
        return len(self._norm_specs) - 1

    def round(
        self, residues: np.ndarray, measurements: np.ndarray
    ) -> dict[str, np.ndarray]:
        """One service round; label → ``(N,)`` alarm flags, bank order."""
        norms_cache: list[np.ndarray | None] = [None] * len(self._norm_specs)

        def norms_for(index: int) -> np.ndarray:
            norms = norms_cache[index]
            if norms is None:
                _, computer = self._norm_specs[index]
                if hasattr(computer, "residue_norms"):
                    norms = computer.residue_norms(residues)
                else:
                    norms = computer._norms(residues)
                norms_cache[index] = norms
            return norms

        alarms: dict[str, np.ndarray] = {}
        for kind, label, payload in self._steps:
            if kind == "threshold":
                core, values, length, index = payload
                norms = norms_for(index)
                timeline = np.minimum(core._steps, length - 1)
                core._steps += 1
                core._step_index += 1
                alarms[label] = alarm_comparison(norms, values[timeline])
            elif kind == "cusum":
                core, bias, threshold, index = payload
                norms = norms_for(index)
                core._statistic = np.maximum(0.0, core._statistic + norms - bias)
                core._step_index += 1
                alarms[label] = core._statistic >= threshold
            else:
                (core,) = payload
                values = residues if core.consumes == "residues" else measurements
                alarms[label] = core.step(values)
        return alarms


__all__ = ["FusedServicePlan"]
