"""``repro.runtime.kernel``: the fused fleet execution kernel.

The opt-in fast path behind ``engine="fused"``: a single block-matrix GEMM
per fleet step (:mod:`~repro.runtime.kernel.core`), detector lanes folded
over pre-stacked residues (:mod:`~repro.runtime.kernel.lanes`), contiguous
shard-across-cores execution and the registered ``legacy``/``fused`` engine
objects (:mod:`~repro.runtime.kernel.runner`), plus version-keyed fused
service rounds (:mod:`~repro.runtime.kernel.serve`).

The float64 fused path is *bit-identical* to the legacy stepper, enforced by
a per-system differential probe at run time and by the differential test
layer (``tests/test_runtime_kernel_equiv.py``); ``dtype="float32"`` trades
that guarantee for speed inside a documented accuracy envelope.  See
``docs/runtime-kernel.md`` for the fusion layout, the sharding contract and
the equivalence-gate policy.
"""

from repro.runtime.kernel.core import FusedStepper, probe_fused_equivalence
from repro.runtime.kernel.lanes import build_lanes
from repro.runtime.kernel.runner import FusedEngine, LegacyEngine
from repro.runtime.kernel.serve import FusedServicePlan

__all__ = [
    "FusedStepper",
    "probe_fused_equivalence",
    "build_lanes",
    "FusedEngine",
    "LegacyEngine",
    "FusedServicePlan",
]
