"""Vectorized fleet simulation: N monitored closed loops stepped together.

This is the execution core of the runtime subsystem.  All per-instance state
— plant state, estimator state, control input, noise, attacks, detector state
— is shaped ``(N, ...)`` and advanced one sampling instance at a time with
batched numpy, so a fleet of thousands of plant instances steps at the cost
of a handful of matrix products per sample instead of a Python loop per
instance.

Three layers build on the shared :class:`_BatchStepper`:

* :func:`batch_simulate` — run ``N`` closed loops to completion and record
  every trajectory (:class:`FleetTrace`); the vectorized replacement for
  calling :func:`~repro.lti.simulate.simulate_closed_loop` in a loop, used by
  the FAR study's benign-population generation.
* :class:`ScheduledAttack` — one entry of the fleet's attack schedule: an
  :class:`~repro.attacks.templates.AttackTemplate` injected into a subset of
  the fleet from a given step onward.
* :class:`FleetSimulator` — the streaming engine: steps the fleet, feeds
  residues/measurements to the deployed online detectors, pushes
  :class:`~repro.runtime.events.AlarmEvent` batches into the sinks, and
  aggregates a :class:`~repro.runtime.report.FleetReport`.

Both entry points accept an ``engine`` name resolved through
:data:`repro.registry.ENGINES`: ``"legacy"`` (this module's per-step
pipeline, the default) or ``"fused"`` (the block-fused kernel of
:mod:`repro.runtime.kernel`, bit-identical in float64 and gated by a
differential probe).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.attacks.templates import AttackTemplate
from repro.lti.simulate import ClosedLoopSystem, SimulationTrace
from repro.noise.models import GaussianNoise, NoiseModel
from repro.obs.clock import Stopwatch
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import span
from repro.registry import ENGINES
from repro.runtime.batch import BatchDetector, make_batched
from repro.runtime.events import AlarmEvent, EventSink
from repro.runtime.report import FleetReport, build_detector_stats
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import ValidationError, check_positive


class _BatchStepper:
    """Advances ``N`` instances of one closed loop with batched numpy.

    Implements exactly the update order of
    :func:`~repro.lti.simulate.simulate_closed_loop` (the paper's
    Algorithm 1 trace semantics), with every quantity carrying a leading
    instance axis.
    """

    def __init__(self, system: ClosedLoopSystem, x0: np.ndarray, xhat0: np.ndarray):
        plant = system.plant
        self.system = system
        self.n_instances = x0.shape[0]
        self._A_T = plant.A.T.copy()
        self._B_T = plant.B.T.copy()
        self._C_T = plant.C.T.copy()
        self._D_T = plant.D.T.copy()
        self._L_T = system.L.T.copy()
        self._K_T = system.K.T.copy()
        self._feedforward = system.feedforward @ system.reference
        self.X = np.array(x0, dtype=float)
        self.Xhat = np.array(xhat0, dtype=float)
        self.U = np.zeros((self.n_instances, plant.n_inputs))

    def step(
        self,
        measurement_noise: np.ndarray,
        process_noise: np.ndarray | None,
        attack: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One closed-loop iteration for the whole fleet.

        Returns ``(y_true, y_attacked, residues)``, each ``(N, m)``; the
        internal plant/estimator/input state advances to the next sample.
        """
        output_feed = self.U @ self._D_T
        y_true = self.X @ self._C_T + output_feed + measurement_noise
        y_attacked = y_true if attack is None else y_true + attack
        residues = y_attacked - (self.Xhat @ self._C_T + output_feed)

        input_feed = self.U @ self._B_T
        self.X = self.X @ self._A_T + input_feed
        if process_noise is not None:
            self.X += process_noise
        self.Xhat = self.Xhat @ self._A_T + input_feed + residues @ self._L_T
        self.U = -(self.Xhat @ self._K_T) + self._feedforward
        return y_true, y_attacked, residues


def _as_instance_states(values: np.ndarray | None, n_instances: int, n: int, label: str) -> np.ndarray:
    """Broadcast a ``(n,)`` vector or validate an ``(N, n)`` matrix of states."""
    if values is None:
        return np.zeros((n_instances, n))
    values = np.asarray(values, dtype=float)
    if values.ndim == 1:
        if values.size != n:
            raise ValidationError(f"{label} must have length {n}, got {values.size}")
        return np.tile(values, (n_instances, 1))
    if values.shape != (n_instances, n):
        raise ValidationError(
            f"{label} must have shape {(n_instances, n)}, got {values.shape}"
        )
    return values.copy()


def _check_noise_block(
    values: np.ndarray | None, shape: tuple[int, int, int], label: str
) -> np.ndarray:
    if values is None:
        return np.zeros(shape)
    values = np.asarray(values, dtype=float)
    if values.shape != shape:
        raise ValidationError(f"{label} must have shape {shape}, got {values.shape}")
    return values


@dataclass
class FleetTrace:
    """Recorded trajectories of a whole fleet (instance-major layout).

    Every array of :class:`~repro.lti.simulate.SimulationTrace` appears here
    with a leading instance axis: ``states`` is ``(N, T+1, n)``, ``residues``
    is ``(N, T, m)``, and so on.  :meth:`instance` slices one instance back
    out as an ordinary :class:`SimulationTrace`.
    """

    states: np.ndarray
    estimates: np.ndarray
    inputs: np.ndarray
    measurements: np.ndarray
    true_outputs: np.ndarray
    residues: np.ndarray
    attacks: np.ndarray
    process_noise: np.ndarray
    measurement_noise: np.ndarray
    dt: float = 1.0
    metadata: dict = field(default_factory=dict)

    @property
    def n_instances(self) -> int:
        """Fleet size ``N``."""
        return self.residues.shape[0]

    @property
    def horizon(self) -> int:
        """Number of closed-loop iterations ``T``."""
        return self.residues.shape[1]

    def instance(self, index: int) -> SimulationTrace:
        """The trajectory of one fleet instance as a :class:`SimulationTrace`."""
        return SimulationTrace(
            states=self.states[index],
            estimates=self.estimates[index],
            inputs=self.inputs[index],
            measurements=self.measurements[index],
            true_outputs=self.true_outputs[index],
            residues=self.residues[index],
            attacks=self.attacks[index],
            process_noise=self.process_noise[index],
            measurement_noise=self.measurement_noise[index],
            dt=self.dt,
            metadata=dict(self.metadata),
        )

    def __iter__(self):
        return (self.instance(i) for i in range(self.n_instances))


def batch_simulate(
    system: ClosedLoopSystem,
    horizon: int,
    x0: np.ndarray | None = None,
    xhat0: np.ndarray | None = None,
    measurement_noise: np.ndarray | None = None,
    process_noise: np.ndarray | None = None,
    attacks: np.ndarray | None = None,
    n_instances: int | None = None,
    engine: str = "legacy",
    engine_options: Mapping[str, object] | None = None,
) -> FleetTrace:
    """Simulate ``N`` instances of one closed loop in batched numpy.

    Parameters
    ----------
    system:
        The closed loop to replicate across the fleet.
    horizon:
        Number of closed-loop iterations ``T``.
    x0 / xhat0:
        Initial plant/estimator states: either one ``(n,)`` vector shared by
        the fleet or an ``(N, n)`` matrix of per-instance states.  Default
        zero, as in the sequential simulator.
    measurement_noise / process_noise / attacks:
        Optional per-instance sequences of shape ``(N, T, m)`` / ``(N, T, n)``
        / ``(N, T, m)``; ``None`` means zero.
    n_instances:
        Fleet size; only needed when every per-instance argument is ``None``.
    engine / engine_options:
        Execution engine name from :data:`repro.registry.ENGINES` plus its
        constructor options (e.g. ``engine="fused"``,
        ``engine_options={"dtype": "float32", "workers": 4}``).

    Returns
    -------
    FleetTrace
        All ``N`` trajectories; ``trace.instance(i)`` is sample-for-sample
        the trace :func:`~repro.lti.simulate.simulate_closed_loop` produces
        for the same inputs.
    """
    plant = system.plant
    T = int(check_positive("horizon", horizon))
    n, m = plant.n_states, plant.n_outputs

    for candidate in (measurement_noise, process_noise, attacks):
        if candidate is not None:
            inferred = np.asarray(candidate).shape[0]
            if n_instances is not None and n_instances != inferred:
                raise ValidationError(
                    f"n_instances={n_instances} conflicts with a per-instance "
                    f"argument sized for {inferred} instances"
                )
            n_instances = inferred
    if n_instances is None:
        x0_arr = None if x0 is None else np.asarray(x0, dtype=float)
        n_instances = x0_arr.shape[0] if x0_arr is not None and x0_arr.ndim == 2 else 1
    N = int(check_positive("n_instances", n_instances))

    X0 = _as_instance_states(x0, N, n, "x0")
    Xhat0 = _as_instance_states(xhat0, N, n, "xhat0")
    V = _check_noise_block(measurement_noise, (N, T, m), "measurement_noise")
    W = _check_noise_block(process_noise, (N, T, n), "process_noise")
    A = _check_noise_block(attacks, (N, T, m), "attacks")
    has_process_noise = process_noise is not None
    has_attack = attacks is not None

    runner = ENGINES.create(engine, **dict(engine_options or {}))
    return runner.batch_trace(
        system, T, X0, Xhat0, V, W, A, has_process_noise, has_attack
    )


@dataclass(frozen=True)
class ScheduledAttack:
    """One entry of a fleet's attack schedule.

    Parameters
    ----------
    template:
        The parametric attack generator to materialise.
    start:
        Fleet step (0-based) at which the injection begins; the template is
        generated over the remaining ``horizon - start`` samples.
    instances:
        Explicit fleet instance ids to attack.  Mutually exclusive with
        ``fraction``; when both are ``None`` the whole fleet is attacked.
    fraction:
        Attack a random subset of this size (drawn once, reproducibly, from
        the fleet's seed).
    label:
        Schedule entry label used in report metadata.
    """

    template: AttackTemplate
    start: int = 0
    instances: tuple[int, ...] | None = None
    fraction: float | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if int(self.start) < 0:
            raise ValidationError("attack start must be non-negative")
        object.__setattr__(self, "start", int(self.start))
        if self.instances is not None and self.fraction is not None:
            raise ValidationError("give either explicit instances or a fraction, not both")
        if self.instances is not None:
            object.__setattr__(
                self, "instances", tuple(sorted(set(int(i) for i in self.instances)))
            )
        if self.fraction is not None:
            fraction = float(self.fraction)
            if not 0.0 < fraction <= 1.0:
                raise ValidationError("attack fraction must be in (0, 1]")
            object.__setattr__(self, "fraction", fraction)

    def resolve_instances(self, n_instances: int, rng: np.random.Generator) -> np.ndarray:
        """The concrete fleet instance ids this entry targets."""
        if self.instances is not None:
            indices = np.asarray(self.instances, dtype=int)
            if indices.size and (indices.min() < 0 or indices.max() >= n_instances):
                raise ValidationError(
                    f"attack instances out of range [0, {n_instances})"
                )
            return indices
        if self.fraction is not None:
            count = max(1, int(round(self.fraction * n_instances)))
            return np.sort(rng.choice(n_instances, size=count, replace=False))
        return np.arange(n_instances)

    def materialize(self, horizon: int, n_outputs: int) -> np.ndarray:
        """The ``(T, m)`` injection sequence this entry adds to its targets."""
        values = np.zeros((horizon, n_outputs))
        if self.start < horizon:
            generated = self.template.generate(horizon - self.start, n_outputs)
            values[self.start :] = generated.values
        return values


class FleetSimulator:
    """Streams ``N`` monitored plant instances step by step.

    Parameters
    ----------
    system:
        The closed loop replicated across the fleet.
    n_instances:
        Fleet size ``N``.
    horizon:
        Number of sampling instances to step.
    detectors:
        Label → detector mapping.  Values may be anything
        :func:`~repro.runtime.batch.make_batched` accepts: synthesized
        :class:`~repro.detectors.threshold.ThresholdVector` objects, offline
        residue / CUSUM / chi-square detectors, plant monitors, or online
        wrappers.
    noise_model:
        Per-instance measurement-noise model; ``None`` draws Gaussian noise
        from the plant's ``R_v`` (zeros when the plant is noiseless).
    include_process_noise:
        Draw per-instance process noise from the plant's ``Q_w``.
    x0 / xhat0:
        Initial plant/estimator state shared by the fleet (``(n,)``) or per
        instance (``(N, n)``).
    x0_spread:
        Optional per-state half-widths of a uniform box around ``x0``; each
        instance draws its own initial state from the box.
    attacks:
        The attack schedule (any iterable of :class:`ScheduledAttack`).
    sinks:
        Event sinks receiving :class:`~repro.runtime.events.AlarmEvent`
        batches each step.
    seed:
        Seed of the per-instance noise streams and the schedule's subset
        draws.
    record_traces:
        Keep the full :class:`FleetTrace` on :attr:`trace` after :meth:`run`
        (off by default: a streaming run needs only ``O(N)`` memory).
    metrics:
        Telemetry wiring.  ``None`` (default) records into the process-wide
        registry from :func:`repro.obs.metrics.get_registry` — which is
        disabled by default, so the only hot-path cost is a no-op counter
        call on steps that alarm.  ``False`` compiles the instrumentation
        out entirely (the baseline of the overhead benchmark).  A
        :class:`~repro.obs.metrics.MetricsRegistry` instance records into
        that registry regardless of the global flag.
    scraper:
        Optional scrape subscription: anything with the
        :class:`~repro.obs.export.PeriodicScraper` interface.
        ``maybe_scrape()`` is called once per fleet step and ``scrape()``
        once at the end of :meth:`run`, so a scraper keeps an exposition
        file fresh during long runs — and a
        :class:`~repro.obs.watch.HealthWatcher` passed here watches the
        run's live gauge/counter streams for regressions.
    engine:
        Execution engine name from :data:`repro.registry.ENGINES`:
        ``"legacy"`` (default, this module's streaming per-step pipeline) or
        ``"fused"`` (the block-fused kernel, bit-identical in float64).
    engine_options:
        Constructor options for the engine, e.g. ``{"dtype": "float32",
        "workers": 4}`` for the fused kernel.  Validated when :meth:`run`
        resolves the engine.
    """

    def __init__(
        self,
        system: ClosedLoopSystem,
        n_instances: int,
        horizon: int,
        *,
        detectors: Mapping[str, object] | None = None,
        noise_model: NoiseModel | None = None,
        include_process_noise: bool = False,
        x0: np.ndarray | None = None,
        xhat0: np.ndarray | None = None,
        x0_spread: np.ndarray | None = None,
        attacks: Sequence[ScheduledAttack] = (),
        sinks: Sequence[EventSink] = (),
        seed: int | None = 0,
        record_traces: bool = False,
        metrics: MetricsRegistry | None | bool = None,
        scraper=None,
        engine: str = "legacy",
        engine_options: Mapping[str, object] | None = None,
    ):
        self.system = system
        self.metrics = metrics
        self.scraper = scraper
        self.engine = str(engine)
        self.engine_options = dict(engine_options or {})
        self.n_instances = int(check_positive("n_instances", n_instances))
        self.horizon = int(check_positive("horizon", horizon))
        self.include_process_noise = bool(include_process_noise)
        self.seed = seed
        self.record_traces = bool(record_traces)
        self.sinks = list(sinks)
        self.trace: FleetTrace | None = None

        plant = system.plant
        if noise_model is None and plant.R_v is not None and np.any(plant.R_v):
            noise_model = GaussianNoise(covariance=plant.R_v)
        if noise_model is not None and noise_model.dimension != plant.n_outputs:
            raise ValidationError(
                f"noise model dimension {noise_model.dimension} does not match "
                f"the plant's {plant.n_outputs} outputs"
            )
        self.noise_model = noise_model

        n = plant.n_states
        # Validated (and broadcast from (n,) to (N, n)) up front so shape
        # errors surface at construction, not mid-run.
        self._x0_matrix = _as_instance_states(x0, self.n_instances, n, "x0")
        self.x0 = self._x0_matrix
        self.xhat0 = _as_instance_states(xhat0, self.n_instances, n, "xhat0")
        if x0_spread is not None:
            x0_spread = np.asarray(x0_spread, dtype=float).reshape(-1)
            if x0_spread.size != n:
                raise ValidationError("x0_spread must have one entry per plant state")
            if np.any(x0_spread < 0):
                raise ValidationError("x0_spread must be non-negative")
        self.x0_spread = x0_spread

        self.attacks = list(attacks)
        for entry in self.attacks:
            if not isinstance(entry, ScheduledAttack):
                raise ValidationError("attacks must be ScheduledAttack entries")

        self.detectors: dict[str, BatchDetector] = {}
        for label, detector in (detectors or {}).items():
            self.detectors[str(label)] = make_batched(
                detector, self.n_instances, dt=system.dt
            )

    # ------------------------------------------------------------------
    def _draw_streams(self, rngs) -> tuple[np.ndarray, np.ndarray | None, np.ndarray]:
        """Per-instance noise and initial-state draws (one stream per instance).

        Each instance's stream draws measurement noise, then process noise,
        then its initial-state offset — the same order as the FAR study's
        benign-trace generation, so fleet runs and FAR populations built from
        the same seed see the same randomness.
        """
        plant = self.system.plant
        T, N = self.horizon, self.n_instances
        n, m = plant.n_states, plant.n_outputs
        V = np.zeros((N, T, m))
        W = None
        draw_process = (
            self.include_process_noise and plant.Q_w is not None and np.any(plant.Q_w)
        )
        if draw_process:
            W = np.zeros((N, T, n))
        X0 = self._x0_matrix.copy()
        for i, rng in enumerate(rngs):
            if self.noise_model is not None:
                V[i] = self.noise_model.sample(T, rng)
            if draw_process:
                W[i] = rng.multivariate_normal(np.zeros(n), plant.Q_w, size=T)
            if self.x0_spread is not None:
                offset = rng.uniform(-1.0, 1.0, size=n)
                X0[i] = X0[i] + offset * self.x0_spread
        return V, W, X0

    def _resolve_schedule(self, rng) -> list[tuple[np.ndarray, np.ndarray]]:
        """Materialise every schedule entry: (instance ids, (T, m) values)."""
        plant = self.system.plant
        resolved = []
        for entry in self.attacks:
            indices = entry.resolve_instances(self.n_instances, rng)
            values = entry.materialize(self.horizon, plant.n_outputs)
            resolved.append((indices, values))
        return resolved

    # ------------------------------------------------------------------
    def run(self) -> FleetReport:
        """Step the whole fleet through the horizon and aggregate the report."""
        runner = ENGINES.create(self.engine, **self.engine_options)
        if self.metrics is False:
            return runner.run_fleet(self)
        with span(
            "fleet.run",
            system=self.system.name,
            n_instances=self.n_instances,
            horizon=self.horizon,
            engine=self.engine,
        ):
            return runner.run_fleet(self)

    def _run(self) -> FleetReport:
        """The legacy-engine run body (the fused kernel's bit-for-bit reference)."""
        plant = self.system.plant
        T, N = self.horizon, self.n_instances
        n, m, p = plant.n_states, plant.n_outputs, plant.n_inputs

        rngs = spawn_rngs(self.seed, N + 1)
        scheduler_rng = ensure_rng(rngs[-1])
        V, W, X0 = self._draw_streams(rngs[:N])
        schedule = self._resolve_schedule(scheduler_rng)

        attacked_mask = np.zeros(N, dtype=bool)
        attack_start = np.full(N, T, dtype=int)
        for (indices, values), entry in zip(schedule, self.attacks):
            if indices.size and np.any(values):
                attacked_mask[indices] = True
                attack_start[indices] = np.minimum(attack_start[indices], entry.start)

        stepper = _BatchStepper(self.system, X0, self.xhat0.copy())
        for detector in self.detectors.values():
            detector.reset()

        first_alarm = {label: np.full(N, -1, dtype=int) for label in self.detectors}
        first_detection = {label: np.full(N, -1, dtype=int) for label in self.detectors}
        alarm_counts = {label: 0 for label in self.detectors}
        benign_alarm_steps = {label: 0 for label in self.detectors}
        benign_mask = ~attacked_mask

        recorder = None
        if self.record_traces:
            recorder = {
                "states": np.zeros((N, T + 1, n)),
                "estimates": np.zeros((N, T + 1, n)),
                "inputs": np.zeros((N, T + 1, p)),
                "measurements": np.zeros((N, T, m)),
                "true_outputs": np.zeros((N, T, m)),
                "residues": np.zeros((N, T, m)),
                "attacks": np.zeros((N, T, m)),
            }
            recorder["states"][:, 0] = stepper.X
            recorder["estimates"][:, 0] = stepper.Xhat
            recorder["inputs"][:, 0] = stepper.U

        # Instruments are resolved once, outside the loop; ``metrics=False``
        # removes them entirely (the overhead benchmark's baseline), and the
        # default disabled registry reduces each surviving call to one
        # attribute check.  The only per-step call sits on the alarm branch,
        # which is already off the fast no-alarm path.
        registry = None
        alarms_counter = None
        if self.metrics is not False:
            registry = (
                self.metrics
                if isinstance(self.metrics, MetricsRegistry)
                else get_registry()
            )
            alarms_counter = registry.counter(
                "fleet_alarms_total", help="Detector alarms fired during fleet runs."
            )

        started = Stopwatch()
        for k in range(T):
            attack_k = None
            if schedule:
                attack_k = np.zeros((N, m))
                for indices, values in schedule:
                    attack_k[indices] += values[k]
            y_true, y_attacked, residues = stepper.step(
                V[:, k], None if W is None else W[:, k], attack_k
            )

            for label, detector in self.detectors.items():
                values = residues if detector.consumes == "residues" else y_attacked
                alarms = detector.step(values)
                fired = int(np.count_nonzero(alarms))
                if not fired:
                    continue
                alarm_counts[label] += fired
                if alarms_counter is not None:
                    alarms_counter.inc(fired, detector=label)
                benign_alarm_steps[label] += int(np.count_nonzero(alarms & benign_mask))
                newly = alarms & (first_alarm[label] < 0)
                first_alarm[label][newly] = k
                detected = (
                    alarms
                    & attacked_mask
                    & (k >= attack_start)
                    & (first_detection[label] < 0)
                )
                first_detection[label][detected] = k
                if self.sinks:
                    events = [
                        AlarmEvent(int(i), k, label, first=bool(newly[i]))
                        for i in np.flatnonzero(alarms)
                    ]
                    for sink in self.sinks:
                        sink.emit(events)

            if recorder is not None:
                recorder["true_outputs"][:, k] = y_true
                recorder["measurements"][:, k] = y_attacked
                recorder["residues"][:, k] = residues
                if attack_k is not None:
                    recorder["attacks"][:, k] = attack_k
                recorder["states"][:, k + 1] = stepper.X
                recorder["estimates"][:, k + 1] = stepper.Xhat
                recorder["inputs"][:, k + 1] = stepper.U

            if self.scraper is not None:
                self.scraper.maybe_scrape()
        elapsed = started.elapsed()

        if registry is not None:
            registry.counter(
                "fleet_steps_total", help="Instance-steps executed by fleet runs."
            ).inc(N * T)
            registry.counter(
                "fleet_runs_total", help="Completed FleetSimulator.run calls."
            ).inc()
            registry.histogram(
                "fleet_run_seconds", help="Wall time per FleetSimulator.run call."
            ).observe(elapsed, system=self.system.name)
            if elapsed > 0:
                registry.gauge(
                    "fleet_throughput_steps_per_s",
                    help="Instance-steps per second of the last fleet run.",
                ).set(N * T / elapsed, system=self.system.name)

        if self.scraper is not None:
            self.scraper.scrape()

        if recorder is not None:
            self.trace = FleetTrace(
                **recorder,
                process_noise=W if W is not None else np.zeros((N, T, n)),
                measurement_noise=V,
                dt=self.system.dt,
                metadata={"system": self.system.name},
            )

        report = FleetReport(
            n_instances=N,
            horizon=T,
            n_attacked=int(np.sum(attacked_mask)),
            elapsed_seconds=elapsed,
            metadata={
                "system": self.system.name,
                "seed": self.seed,
                "attacks": [
                    {
                        "label": entry.label or f"attack-{index}",
                        "start": entry.start,
                        "instances": int(indices.size),
                        "template": type(entry.template).__name__,
                    }
                    for index, ((indices, _), entry) in enumerate(
                        zip(schedule, self.attacks)
                    )
                ],
            },
        )
        for label in self.detectors:
            report.detectors[label] = build_detector_stats(
                label=label,
                first_alarm=first_alarm[label],
                first_detection=first_detection[label],
                alarm_count=alarm_counts[label],
                benign_alarm_steps=benign_alarm_steps[label],
                attacked_mask=attacked_mask,
                attack_start=attack_start,
                horizon=T,
            )
        return report


__all__ = ["FleetTrace", "ScheduledAttack", "FleetSimulator", "batch_simulate"]
