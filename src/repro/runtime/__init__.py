"""Streaming fleet-monitoring runtime: deploy synthesized detectors online.

The synthesis pipeline (:mod:`repro.api`) produces detectors; this package
*operates* them.  It provides:

* online stateful wrappers (:class:`OnlineResidueDetector`,
  :class:`OnlineCusum`, :class:`OnlineChiSquare`, :class:`OnlineMonitor`)
  with a ``step(y_k) -> alarm`` API, trace-equivalent to the offline
  ``evaluate`` paths;
* their fleet-wide vectorized cores (:mod:`repro.runtime.batch`), all state
  shaped ``(N, ...)``;
* the :class:`FleetSimulator` — N closed-loop instances advanced step by
  step in batched numpy, with per-instance noise streams and a scheduled
  attack injector (:class:`ScheduledAttack`);
* pluggable execution engines (:class:`LegacyEngine`, :class:`FusedEngine`
  from :mod:`repro.runtime.kernel`, selected by ``engine="legacy"/"fused"``
  through :data:`repro.registry.ENGINES`) — the fused kernel collapses each
  fleet step into one block GEMM while staying bit-identical in float64;
* an event layer (:class:`AlarmEvent`, :class:`InMemorySink`,
  :class:`JSONLSink`) and the :class:`FleetReport` aggregate;
* the config-driven :func:`run_fleet` entry point (see
  :class:`repro.api.RuntimeConfig`).
"""

from repro.runtime.batch import (
    BatchChiSquare,
    BatchCusum,
    BatchDetector,
    BatchMonitor,
    BatchThresholdDetector,
    make_batched,
)
from repro.runtime.events import AlarmEvent, EventSink, InMemorySink, JSONLSink
from repro.runtime.fleet import FleetSimulator, FleetTrace, ScheduledAttack, batch_simulate
from repro.runtime.online import (
    OnlineChiSquare,
    OnlineCusum,
    OnlineDetector,
    OnlineMonitor,
    OnlineResidueDetector,
    make_online,
)
from repro.runtime.report import DetectorFleetStats, FleetReport
from repro.runtime.engine import run_fleet
from repro.runtime.kernel import FusedEngine, LegacyEngine

__all__ = [
    "AlarmEvent",
    "BatchChiSquare",
    "BatchCusum",
    "BatchDetector",
    "BatchMonitor",
    "BatchThresholdDetector",
    "DetectorFleetStats",
    "EventSink",
    "FleetReport",
    "FleetSimulator",
    "FleetTrace",
    "FusedEngine",
    "InMemorySink",
    "LegacyEngine",
    "JSONLSink",
    "OnlineChiSquare",
    "OnlineCusum",
    "OnlineDetector",
    "OnlineMonitor",
    "OnlineResidueDetector",
    "ScheduledAttack",
    "batch_simulate",
    "make_batched",
    "make_online",
    "run_fleet",
]
