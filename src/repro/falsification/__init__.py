"""Attack-synthesis backends.

Three interchangeable decision procedures answer the Algorithm 1 query "does
a stealthy-yet-successful attack exist?":

* :class:`~repro.falsification.lp_backend.LPAttackBackend` — enumerates the
  (few) ways of violating the performance criterion and solves one linear
  program per branch with :func:`scipy.optimize.linprog`.  Complete for the
  conservative monitor encoding and fast; the default.
* :class:`~repro.falsification.smt_backend.SMTAttackBackend` — encodes the
  whole query as a QF-LRA formula and discharges it to the from-scratch
  DPLL(T) solver in :mod:`repro.smt` (the Z3 substitute).
* :class:`~repro.falsification.optimizer.OptimizationFalsifier` — a
  best-effort randomized/descent falsifier that searches attack space by
  simulation only; incomplete, used for cross-checking and as an ablation.
"""

from repro.falsification.base import AttackBackend, BackendAnswer
from repro.falsification.lp_backend import LPAttackBackend
from repro.falsification.smt_backend import SMTAttackBackend
from repro.falsification.optimizer import OptimizationFalsifier
from repro.falsification.registry import get_backend, available_backends

__all__ = [
    "AttackBackend",
    "BackendAnswer",
    "LPAttackBackend",
    "SMTAttackBackend",
    "OptimizationFalsifier",
    "get_backend",
    "available_backends",
]
