"""Backend registry: resolve a backend by name."""

from __future__ import annotations

from repro.falsification.base import AttackBackend
from repro.falsification.lp_backend import LPAttackBackend
from repro.falsification.optimizer import OptimizationFalsifier
from repro.falsification.smt_backend import SMTAttackBackend
from repro.utils.validation import ValidationError

_BACKENDS = {
    "lp": LPAttackBackend,
    "smt": SMTAttackBackend,
    "optimizer": OptimizationFalsifier,
}


def available_backends() -> list[str]:
    """Names of the registered attack-synthesis backends."""
    return sorted(_BACKENDS)


def get_backend(name_or_backend, **kwargs) -> AttackBackend:
    """Resolve a backend instance from a name or pass through an instance.

    Parameters
    ----------
    name_or_backend:
        Either an :class:`AttackBackend` instance (returned unchanged) or one
        of the registered names (``"lp"``, ``"smt"``, ``"optimizer"``).
    kwargs:
        Constructor arguments forwarded when a name is given.
    """
    if isinstance(name_or_backend, AttackBackend):
        return name_or_backend
    name = str(name_or_backend)
    if name not in _BACKENDS:
        raise ValidationError(
            f"unknown backend {name!r}; available: {', '.join(available_backends())}"
        )
    return _BACKENDS[name](**kwargs)
