"""Backend registration and name resolution.

The built-in attack-synthesis backends register themselves into the shared
:data:`repro.registry.BACKENDS` registry here; :func:`get_backend` is the
resolution entry point used by :func:`repro.core.attack_synthesis.synthesize_attack`.
Downstream users add their own backends with::

    from repro.registry import BACKENDS

    @BACKENDS.register("my-solver")
    class MySolverBackend(AttackBackend):
        ...
"""

from __future__ import annotations

from repro.falsification.base import AttackBackend
from repro.falsification.lp_backend import LPAttackBackend
from repro.falsification.optimizer import OptimizationFalsifier
from repro.falsification.smt_backend import SMTAttackBackend
from repro.registry import BACKENDS, available_backends

BACKENDS.register("lp", LPAttackBackend)
BACKENDS.register("smt", SMTAttackBackend)
BACKENDS.register("optimizer", OptimizationFalsifier)


def get_backend(name_or_backend, **kwargs) -> AttackBackend:
    """Resolve a backend instance from a name or pass through an instance.

    Parameters
    ----------
    name_or_backend:
        Either an :class:`AttackBackend` instance (returned unchanged) or a
        name registered in :data:`repro.registry.BACKENDS` (built-ins:
        ``"lp"``, ``"smt"``, ``"optimizer"``).  Unknown names raise a
        :class:`~repro.registry.RegistryError` listing the currently
        registered names.
    kwargs:
        Constructor arguments forwarded when a name is given.
    """
    if isinstance(name_or_backend, AttackBackend):
        return name_or_backend
    return BACKENDS.create(str(name_or_backend), **kwargs)


__all__ = ["get_backend", "available_backends", "BACKENDS"]
