"""Linear-programming attack-synthesis backend.

The base constraints (stealth + monitors) are a conjunction of affine
inequalities; the performance-violation condition is a disjunction of affine
inequalities (one per way of breaking a ``pfc`` condition).  The backend
therefore solves one feasibility LP per violation branch:

    minimise   branch_row · theta
    subject to base constraints, variable bounds

and declares the branch feasible when the optimum pushes the branch
expression to ``<= 0`` (the strictness margin is already folded into the
constants).  The query is UNSAT exactly when every branch is infeasible,
which — for the conservative monitor encoding — is a complete answer.

Counterexample quality matters for the synthesis loops built on top: a plain
feasibility vertex tends to sit right at the stealth boundary, which makes
each counterexample-guided refinement step arbitrarily small.  With
``margin_mode="max-stealth-margin"`` (the default) the returned attack
maximises the uniform slack of the stealth constraints, i.e. it is the *most
stealthy* attack that still violates the performance criterion.  Thresholds
refined against such attacks drop by the largest possible amount per round,
which is what makes Algorithms 2 and 3 converge in a practical number of
rounds.

Two solve strategies compute that identical answer:

* ``margin_strategy="single-lp"`` (default) solves the stealth-margin LP
  directly — its feasible set projects exactly onto the feasibility LP's
  (fix ``s = 0``), so branch infeasibility and the returned maximum-margin
  vertex coincide with the historical sequence; any unusual solver status
  falls back to that sequence verbatim.
* ``margin_strategy="two-phase"`` is the historical
  feasibility-then-margin sequence, kept as the reference implementation for
  the equivalence benchmarks.

Incrementality: :meth:`LPAttackBackend.open_session` returns a session that
assembles the static (monitor) rows, the variable bounds and the stealth row
template once per problem.  Each round only computes the stealth right-hand
side from the candidate threshold — the constraint *matrix* of a round is
fully determined by the threshold's finite-instance mask, so its assembled
sparse form is cached per ``(mask, branch)`` and reused across rounds (the
HiGHS wrapper converts to CSC internally anyway, so passing the cached CSC
changes nothing numerically).  The one-shot :meth:`LPAttackBackend.solve` is
a session of length one, so both paths run the identical assembly and
produce bit-identical answers.
"""

from __future__ import annotations

from repro.obs.clock import Stopwatch
from collections import OrderedDict

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.core.encoding import AttackEncoding
from repro.detectors.threshold import ThresholdVector
from repro.falsification.base import AttackBackend, BackendAnswer, BackendSession
from repro.utils.results import SolveStatus
from repro.utils.validation import ValidationError

# Bound on distinct threshold finite-masks whose assembled matrices one
# session keeps (phase-2 loops reuse a single mask; pivot loops touch a new
# mask only when they place a threshold at a new instant).
_MATRIX_CACHE_MASKS = 16


class LPBackendSession(BackendSession):
    """Per-problem LP session: static blocks assembled once, stealth per round.

    The stacked base matrix handed to ``linprog`` keeps the historical row
    order — stealth rows (template order), then monitor rows, then the branch
    row — so a session answer is bit-identical to the legacy per-call path.
    """

    def __init__(self, backend: "LPAttackBackend", encoding: AttackEncoding):
        super().__init__(backend, encoding)
        static = encoding.static_constraints()
        n = encoding.n_variables
        if static:
            self._static_rows = np.vstack([c.row for c in static])
            self._static_rhs = np.asarray([-c.constant for c in static], dtype=float)
        else:
            self._static_rows = np.zeros((0, n))
            self._static_rhs = np.zeros(0)
        self._bounds = encoding.variable_bounds()
        self._branches = encoding.violation_branches()
        self._template = encoding.stealth_template
        self._margin = float(encoding.problem.strictness)
        self._horizon = encoding.problem.horizon
        # (mask bytes) -> {branch index -> (A_ub_csc, A_margin_csc | None)}
        self._matrix_cache: OrderedDict[bytes, dict] = OrderedDict()

    # ------------------------------------------------------------------
    def _stealth_arrays(
        self, threshold: ThresholdVector | None
    ) -> tuple[np.ndarray, np.ndarray, bytes]:
        """Stealth rows, right-hand side and mask key for one candidate threshold."""
        if threshold is None:
            return np.zeros((0, self.encoding.n_variables)), np.zeros(0), b"none"
        template = self._template
        effective = threshold.effective(self._horizon)
        per_row = template.bounds_per_row(effective)
        finite = np.isfinite(per_row)
        keep = np.flatnonzero(finite)
        rows = template.rows[keep]
        # Same arithmetic order as AttackEncoding.stealth_constraints:
        # (scaled constant - bound) + margin, then rhs = -constant.
        constants = (template.constants[keep] - per_row[keep]) + self._margin
        return rows, -constants, finite.tobytes()

    def _branch_matrices(
        self,
        mask_key: bytes,
        index: int,
        stealth_rows: np.ndarray,
        branch,
        with_margin: bool,
    ):
        """The round's assembled (sparse) matrices for one branch, cached by mask.

        The matrix depends only on which instances carry a finite threshold
        (the mask), not on the threshold values, so phase-2 style loops hit
        the cache every round.
        """
        per_mask = self._matrix_cache.get(mask_key)
        if per_mask is None:
            if len(self._matrix_cache) >= _MATRIX_CACHE_MASKS:
                self._matrix_cache.popitem(last=False)
            per_mask = {}
            self._matrix_cache[mask_key] = per_mask
        entry = per_mask.get(index)
        if entry is None or (with_margin and entry[1] is None):
            n_stealth = stealth_rows.shape[0]
            A_dense = np.vstack([stealth_rows, self._static_rows, branch.row])
            A_ub = sparse.csc_matrix(A_dense)
            A_margin = None
            if with_margin and n_stealth:
                A_margin = sparse.csc_matrix(
                    self.backend._with_margin_column(A_dense, n_stealth)
                )
            entry = (A_ub, A_margin)
            per_mask[index] = entry
        return entry

    def solve(
        self,
        threshold: ThresholdVector | None = None,
        time_budget: float | None = None,
    ) -> BackendAnswer:
        start = Stopwatch()
        backend = self.backend
        branches = self._branches
        if not branches:
            # No way to violate pfc: the criterion is vacuous, nothing to attack.
            return BackendAnswer(status=SolveStatus.UNSAT, diagnostics={"branches": 0})

        stealth_rows, stealth_rhs, mask_key = self._stealth_arrays(threshold)
        n_stealth = stealth_rows.shape[0]
        with_margin = backend.margin_mode != "none" and n_stealth > 0

        explored = 0
        best_theta = None
        best_label = None
        for index, branch in enumerate(branches):
            if start.exceeded(time_budget):
                return BackendAnswer(
                    status=SolveStatus.UNKNOWN,
                    diagnostics={"branches_explored": explored, "reason": "time budget"},
                )
            explored += 1
            A_ub, A_margin = self._branch_matrices(
                mask_key, index, stealth_rows, branch, with_margin
            )
            b_ub = np.concatenate([stealth_rhs, self._static_rhs, [-branch.constant]])
            theta = backend._solve_branch(
                A_ub, b_ub, n_stealth, self._bounds, branch, A_margin=A_margin
            )
            if theta is not None:
                best_theta = theta
                best_label = branch.label
                break

        if best_theta is None:
            return BackendAnswer(
                status=SolveStatus.UNSAT,
                diagnostics={
                    "backend": backend.name,
                    "branches_explored": explored,
                    "elapsed": start.elapsed(),
                },
            )
        return BackendAnswer(
            status=SolveStatus.SAT,
            theta=best_theta,
            diagnostics={
                "backend": backend.name,
                "branch": best_label,
                "branches_explored": explored,
                "margin_mode": backend.margin_mode,
                "elapsed": start.elapsed(),
            },
        )


class LPAttackBackend(AttackBackend):
    """Branch-enumerating LP backend built on ``scipy.optimize.linprog`` (HiGHS)."""

    name = "lp"

    def __init__(
        self,
        method: str = "highs",
        tolerance: float = 1e-9,
        margin_mode: str = "max-stealth-margin",
        margin_strategy: str = "single-lp",
    ):
        if margin_mode not in {"max-stealth-margin", "none"}:
            raise ValidationError("margin_mode must be 'max-stealth-margin' or 'none'")
        if margin_strategy not in {"single-lp", "two-phase"}:
            raise ValidationError("margin_strategy must be 'single-lp' or 'two-phase'")
        self.method = method
        self.tolerance = float(tolerance)
        self.margin_mode = margin_mode
        self.margin_strategy = margin_strategy

    # ------------------------------------------------------------------
    @staticmethod
    def _with_margin_column(A_ub, n_stealth: int):
        """Append the uniform-slack column (1 on stealth rows) to ``A_ub``."""
        margin_column = np.zeros((A_ub.shape[0], 1))
        margin_column[:n_stealth, 0] = 1.0
        if sparse.issparse(A_ub):
            return sparse.hstack([A_ub, sparse.csc_matrix(margin_column)], format="csc")
        return np.hstack([A_ub, margin_column])

    def _margin_lp(self, A_ub, b_ub, n_stealth: int, bounds: list, A_margin=None):
        """Solve the uniform stealth-margin LP over ``[theta, s]``.

        Variables: ``[theta, s]``; maximise ``s`` subject to

        * stealth rows:      ``row·theta + s <= b``
        * other base rows:   ``row·theta     <= b``
        * branch row:        ``row·theta     <= b``   (violation kept)
        """
        n = A_ub.shape[1]
        if A_margin is None:
            A_margin = self._with_margin_column(A_ub, n_stealth)
        objective = np.zeros(n + 1)
        objective[-1] = -1.0
        margin_bounds = list(bounds) + [(0.0, None)]
        return linprog(
            c=objective,
            A_ub=A_margin,
            b_ub=b_ub,
            bounds=margin_bounds,
            method=self.method,
        )

    def _feasibility_then_margin(
        self, A_ub, b_ub, n_stealth: int, bounds: list, branch, A_margin=None
    ) -> np.ndarray | None:
        """The historical two-phase sequence: feasibility LP, then margin LP."""
        n = A_ub.shape[1]
        feasibility = linprog(
            c=branch.row,
            A_ub=A_ub,
            b_ub=b_ub,
            bounds=bounds,
            method=self.method,
        )
        theta = None
        if feasibility.status == 0 and feasibility.x is not None:
            theta = np.asarray(feasibility.x, dtype=float)
        elif feasibility.status == 3:
            # Unbounded objective: the region is non-empty; recover any point.
            fallback = linprog(
                c=np.zeros(n), A_ub=A_ub, b_ub=b_ub, bounds=bounds, method=self.method
            )
            if fallback.status == 0 and fallback.x is not None:
                theta = np.asarray(fallback.x, dtype=float)
        if theta is None:
            return None
        if float(branch.row @ theta) + branch.constant > self.tolerance:
            return None
        if self.margin_mode == "none" or n_stealth == 0:
            return theta

        improved = self._margin_lp(A_ub, b_ub, n_stealth, bounds, A_margin=A_margin)
        if improved.status == 0 and improved.x is not None:
            candidate = np.asarray(improved.x[:n], dtype=float)
            if float(branch.row @ candidate) + branch.constant <= self.tolerance:
                return candidate
        return theta

    def _solve_branch(
        self, A_ub, b_ub, n_stealth: int, bounds: list, branch, A_margin=None
    ) -> np.ndarray | None:
        """Feasibility (+ optional margin maximisation) for one violation branch."""
        n = A_ub.shape[1]
        if (
            self.margin_strategy == "two-phase"
            or self.margin_mode == "none"
            or n_stealth == 0
        ):
            return self._feasibility_then_margin(
                A_ub, b_ub, n_stealth, bounds, branch, A_margin=A_margin
            )

        # Margin-first: the margin LP's feasible set is the feasibility LP's
        # region augmented with s >= 0 (fix s = 0 to recover it), so branch
        # infeasibility coincides, and its optimum is exactly the candidate
        # the two-phase sequence would return.  One LP instead of two on
        # every SAT round.
        improved = self._margin_lp(A_ub, b_ub, n_stealth, bounds, A_margin=A_margin)
        if improved.status == 2:
            # Infeasible: the branch admits no stealthy successful attack.
            return None
        if improved.status == 0 and improved.x is not None:
            candidate = np.asarray(improved.x[:n], dtype=float)
            if float(branch.row @ candidate) + branch.constant <= self.tolerance:
                return candidate
        # Unusual solver status (or tolerance miss): replicate the historical
        # sequence verbatim so answers stay bit-identical with two-phase.
        return self._feasibility_then_margin(
            A_ub, b_ub, n_stealth, bounds, branch, A_margin=A_margin
        )

    # ------------------------------------------------------------------
    def open_session(self, encoding: AttackEncoding) -> LPBackendSession:
        """Open the matrix-caching incremental session for ``encoding``."""
        return LPBackendSession(self, encoding)

    def solve(self, encoding: AttackEncoding, time_budget: float | None = None) -> BackendAnswer:
        """One-shot query: a session of length one over ``encoding``."""
        return self.open_session(encoding).solve(encoding.threshold, time_budget=time_budget)
