"""Linear-programming attack-synthesis backend.

The base constraints (stealth + monitors) are a conjunction of affine
inequalities; the performance-violation condition is a disjunction of affine
inequalities (one per way of breaking a ``pfc`` condition).  The backend
therefore solves one feasibility LP per violation branch:

    minimise   branch_row · theta
    subject to base constraints, variable bounds

and declares the branch feasible when the optimum pushes the branch
expression to ``<= 0`` (the strictness margin is already folded into the
constants).  The query is UNSAT exactly when every branch is infeasible,
which — for the conservative monitor encoding — is a complete answer.

Counterexample quality matters for the synthesis loops built on top: a plain
feasibility vertex tends to sit right at the stealth boundary, which makes
each counterexample-guided refinement step arbitrarily small.  With
``margin_mode="max-stealth-margin"`` (the default) a feasible branch is
re-solved to maximise the uniform slack of the stealth constraints, i.e. the
returned attack is the *most stealthy* one that still violates the
performance criterion.  Thresholds refined against such attacks drop by the
largest possible amount per round, which is what makes Algorithms 2 and 3
converge in a practical number of rounds.
"""

from __future__ import annotations

import time

import numpy as np
from scipy.optimize import linprog

from repro.core.encoding import AttackEncoding
from repro.falsification.base import AttackBackend, BackendAnswer
from repro.utils.results import SolveStatus
from repro.utils.validation import ValidationError


class LPAttackBackend(AttackBackend):
    """Branch-enumerating LP backend built on ``scipy.optimize.linprog`` (HiGHS)."""

    name = "lp"

    def __init__(
        self,
        method: str = "highs",
        tolerance: float = 1e-9,
        margin_mode: str = "max-stealth-margin",
    ):
        if margin_mode not in {"max-stealth-margin", "none"}:
            raise ValidationError("margin_mode must be 'max-stealth-margin' or 'none'")
        self.method = method
        self.tolerance = float(tolerance)
        self.margin_mode = margin_mode

    # ------------------------------------------------------------------
    def _solve_branch(
        self,
        encoding: AttackEncoding,
        base: list,
        bounds: list,
        branch,
    ) -> np.ndarray | None:
        """Feasibility (+ optional margin maximisation) for one violation branch."""
        n = encoding.n_variables
        rows = [constraint.row for constraint in base] + [branch.row]
        rhs = [-constraint.constant for constraint in base] + [-branch.constant]
        A_ub = np.vstack(rows)
        b_ub = np.asarray(rhs)

        feasibility = linprog(
            c=branch.row,
            A_ub=A_ub,
            b_ub=b_ub,
            bounds=bounds,
            method=self.method,
        )
        theta = None
        if feasibility.status == 0 and feasibility.x is not None:
            theta = np.asarray(feasibility.x, dtype=float)
        elif feasibility.status == 3:
            # Unbounded objective: the region is non-empty; recover any point.
            fallback = linprog(
                c=np.zeros(n), A_ub=A_ub, b_ub=b_ub, bounds=bounds, method=self.method
            )
            if fallback.status == 0 and fallback.x is not None:
                theta = np.asarray(fallback.x, dtype=float)
        if theta is None:
            return None
        if float(branch.row @ theta) + branch.constant > self.tolerance:
            return None
        if self.margin_mode == "none":
            return theta

        # --- maximise the uniform stealth margin -------------------------------
        stealth_indices = [i for i, constraint in enumerate(base) if constraint.kind == "stealth"]
        if not stealth_indices:
            return theta
        # Variables: [theta, s]; maximise s subject to
        #   stealth rows:      row·theta + s <= b
        #   other base rows:   row·theta     <= b
        #   branch row:        row·theta     <= b   (violation kept)
        margin_column = np.zeros((A_ub.shape[0], 1))
        for index in stealth_indices:
            margin_column[index, 0] = 1.0
        A_margin = np.hstack([A_ub, margin_column])
        objective = np.zeros(n + 1)
        objective[-1] = -1.0
        margin_bounds = list(bounds) + [(0.0, None)]
        improved = linprog(
            c=objective,
            A_ub=A_margin,
            b_ub=b_ub,
            bounds=margin_bounds,
            method=self.method,
        )
        if improved.status == 0 and improved.x is not None:
            candidate = np.asarray(improved.x[:n], dtype=float)
            if float(branch.row @ candidate) + branch.constant <= self.tolerance:
                return candidate
        return theta

    # ------------------------------------------------------------------
    def solve(self, encoding: AttackEncoding, time_budget: float | None = None) -> BackendAnswer:
        start = time.monotonic()
        base = encoding.base_constraints()
        branches = encoding.violation_branches()
        bounds = encoding.variable_bounds()

        if not branches:
            # No way to violate pfc: the criterion is vacuous, nothing to attack.
            return BackendAnswer(status=SolveStatus.UNSAT, diagnostics={"branches": 0})

        explored = 0
        best_theta = None
        best_label = None
        for branch in branches:
            if time_budget is not None and time.monotonic() - start > time_budget:
                return BackendAnswer(
                    status=SolveStatus.UNKNOWN,
                    diagnostics={"branches_explored": explored, "reason": "time budget"},
                )
            explored += 1
            theta = self._solve_branch(encoding, base, bounds, branch)
            if theta is not None:
                best_theta = theta
                best_label = branch.label
                break

        if best_theta is None:
            return BackendAnswer(
                status=SolveStatus.UNSAT,
                diagnostics={
                    "backend": self.name,
                    "branches_explored": explored,
                    "elapsed": time.monotonic() - start,
                },
            )
        return BackendAnswer(
            status=SolveStatus.SAT,
            theta=best_theta,
            diagnostics={
                "backend": self.name,
                "branch": best_label,
                "branches_explored": explored,
                "margin_mode": self.margin_mode,
                "elapsed": time.monotonic() - start,
            },
        )
