"""Common backend interface for attack synthesis.

Besides the one-shot :meth:`AttackBackend.solve` entry point, backends expose
:meth:`AttackBackend.open_session`: a per-problem :class:`BackendSession`
that answers a *sequence* of Algorithm 1 queries against the same problem
where only the candidate threshold changes between calls — the shape of every
counterexample-guided synthesis loop.  The base session simply rebinds the
shared encoding (already skipping the horizon unrolling and static constraint
rebuilds); the LP and SMT backends override it to additionally cache their
assembled solver-level representations.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.core.encoding import AttackEncoding
from repro.detectors.threshold import ThresholdVector
from repro.utils.results import SolveStatus


@dataclass
class BackendAnswer:
    """Raw answer of a backend to one Algorithm 1 query.

    Attributes
    ----------
    status:
        ``SAT`` (attack found), ``UNSAT`` (proved none exists under the
        backend's encoding) or ``UNKNOWN`` (budget exhausted / incomplete
        search gave up).
    theta:
        The satisfying decision vector when ``status`` is ``SAT``.
    diagnostics:
        Backend-specific statistics (solver iterations, branches explored,
        wall-clock time, ...).
    """

    status: SolveStatus
    theta: np.ndarray | None = None
    diagnostics: dict = field(default_factory=dict)

    @property
    def found_attack(self) -> bool:
        """True when a concrete witness was produced."""
        return self.status is SolveStatus.SAT and self.theta is not None


class BackendSession:
    """Incremental per-problem solving session.

    Holds whatever the backend can reuse across the rounds of one synthesis
    loop (the shared encoding at minimum) and answers one query per
    :meth:`solve` call.  Sessions are stateless *between* calls: the answer
    depends only on the threshold handed to that call, so interleaving
    queries from several synthesis algorithms over one session is safe.
    """

    def __init__(self, backend: "AttackBackend", encoding: AttackEncoding):
        self.backend = backend
        self.encoding = encoding

    def solve(
        self,
        threshold: ThresholdVector | None = None,
        time_budget: float | None = None,
    ) -> BackendAnswer:
        """Answer one Algorithm 1 query for ``threshold``.

        The default implementation rebinds the shared encoding and delegates
        to the backend's one-shot ``solve`` — already skipping the per-round
        unrolling and static-constraint rebuilds.
        """
        return self.backend.solve(
            self.encoding.with_threshold(threshold), time_budget=time_budget
        )


class AttackBackend(abc.ABC):
    """A decision procedure for the stealthy-attack existence query."""

    name: str = "backend"

    @abc.abstractmethod
    def solve(self, encoding: AttackEncoding, time_budget: float | None = None) -> BackendAnswer:
        """Answer the query described by ``encoding``."""

    def open_session(self, encoding: AttackEncoding) -> BackendSession:
        """Open an incremental session over ``encoding``'s static structure.

        Backends with cacheable solver-level state (assembled LP matrices,
        asserted SMT clauses) override this; the default session still reuses
        the encoding across rounds.
        """
        return BackendSession(self, encoding)
