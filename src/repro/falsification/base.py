"""Common backend interface for attack synthesis."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.core.encoding import AttackEncoding
from repro.utils.results import SolveStatus


@dataclass
class BackendAnswer:
    """Raw answer of a backend to one Algorithm 1 query.

    Attributes
    ----------
    status:
        ``SAT`` (attack found), ``UNSAT`` (proved none exists under the
        backend's encoding) or ``UNKNOWN`` (budget exhausted / incomplete
        search gave up).
    theta:
        The satisfying decision vector when ``status`` is ``SAT``.
    diagnostics:
        Backend-specific statistics (solver iterations, branches explored,
        wall-clock time, ...).
    """

    status: SolveStatus
    theta: np.ndarray | None = None
    diagnostics: dict = field(default_factory=dict)

    @property
    def found_attack(self) -> bool:
        """True when a concrete witness was produced."""
        return self.status is SolveStatus.SAT and self.theta is not None


class AttackBackend(abc.ABC):
    """A decision procedure for the stealthy-attack existence query."""

    name: str = "backend"

    @abc.abstractmethod
    def solve(self, encoding: AttackEncoding, time_budget: float | None = None) -> BackendAnswer:
        """Answer the query described by ``encoding``."""
