"""SMT attack-synthesis backend (the Z3 substitute path of the paper).

The whole Algorithm 1 assertion is translated into a single QF-LRA formula::

    AND(base constraints)  AND  OR(violation branches)

over one real variable per decision-vector component, and discharged to the
DPLL(T) solver in :mod:`repro.smt`.  Compared to the LP backend this handles
arbitrary Boolean structure (useful for the exact dead-zone semantics of
monitors) at the cost of speed.

Incrementality: :meth:`SMTAttackBackend.open_session` keeps one
:class:`~repro.smt.solver.Solver` per problem with the static clauses
(monitors, variable bounds, the violation disjunction) asserted once; each
round pushes the candidate threshold's stealth clauses, checks, and pops —
re-encoding nothing but the stealth atoms.  The one-shot
:meth:`SMTAttackBackend.solve` is a session of length one, so both paths
discharge the identical assertion sequence.

Note: to make that possible, the assertion order changed from the
pre-session releases (stealth clauses are now asserted *last*, after the
static clauses, instead of first).  CNF ordering steers the DPLL decision
heuristic, so on queries with several satisfying attacks this backend may
return a different (equally valid) model than v1 did; the bit-identity
guarantees in this codebase are between the session and per-call paths of
the *current* encoding, not across releases.
"""

from __future__ import annotations

from repro.obs.clock import Stopwatch

import numpy as np

from repro.core.encoding import AttackEncoding
from repro.core.unroll import AffineConstraint
from repro.detectors.threshold import ThresholdVector
from repro.falsification.base import AttackBackend, BackendAnswer, BackendSession
from repro.smt.expr import Atom, Formula, Or
from repro.smt.linear import LinearExpr
from repro.smt.solver import Solver
from repro.utils.results import SolveStatus


def _constraint_to_atom(constraint: AffineConstraint, names: list[str]) -> Atom:
    """Translate ``row·theta + constant (<|<=) 0`` into an SMT atom."""
    coefficients = {
        names[index]: float(value)
        for index, value in enumerate(constraint.row)
        if abs(value) > 1e-15
    }
    expression = LinearExpr(coefficients, float(constraint.constant))
    return Atom(expression=expression, strict=bool(constraint.strict))


def _bounds_to_formulas(
    bounds: list[tuple[float | None, float | None]], names: list[str]
) -> list[Formula]:
    formulas: list[Formula] = []
    for index, (low, high) in enumerate(bounds):
        if low is not None:
            formulas.append(Atom(expression=LinearExpr({names[index]: -1.0}, float(low)), strict=False))
        if high is not None:
            formulas.append(Atom(expression=LinearExpr({names[index]: 1.0}, -float(high)), strict=False))
    return formulas


class SMTBackendSession(BackendSession):
    """Per-problem SMT session: static clauses asserted once, stealth push/popped."""

    def __init__(self, backend: "SMTAttackBackend", encoding: AttackEncoding):
        super().__init__(backend, encoding)
        self._names = encoding.variable_names
        self._branches = encoding.violation_branches()
        self._solver = Solver(theory_check=backend.theory_check)
        for formula in backend.static_formulas(encoding):
            self._solver.add(formula)

    def solve(
        self,
        threshold: ThresholdVector | None = None,
        time_budget: float | None = None,
    ) -> BackendAnswer:
        start = Stopwatch()
        if not self._branches:
            return BackendAnswer(status=SolveStatus.UNSAT, diagnostics={"branches": 0})

        self._solver.push()
        try:
            for constraint in self.encoding.stealth_constraints(threshold):
                self._solver.add(_constraint_to_atom(constraint, self._names))
            result = self._solver.check(time_budget=time_budget)
        finally:
            self._solver.pop()

        diagnostics = dict(result.statistics)
        diagnostics.update({"backend": self.backend.name, "elapsed": start.elapsed()})

        if result.status is SolveStatus.SAT:
            theta = np.array([result.real_model.get(name, 0.0) for name in self._names])
            return BackendAnswer(status=SolveStatus.SAT, theta=theta, diagnostics=diagnostics)
        return BackendAnswer(status=result.status, diagnostics=diagnostics)


class SMTAttackBackend(AttackBackend):
    """DPLL(T)-based backend over the from-scratch QF-LRA solver."""

    name = "smt"

    def __init__(self, theory_check: str = "eager"):
        self.theory_check = theory_check

    def static_formulas(self, encoding: AttackEncoding) -> list[Formula]:
        """Threshold-independent assertions: monitors, bounds, violation disjunction."""
        names = encoding.variable_names
        formulas: list[Formula] = []
        for constraint in encoding.static_constraints():
            formulas.append(_constraint_to_atom(constraint, names))
        formulas.extend(_bounds_to_formulas(encoding.variable_bounds(), names))
        branches = encoding.violation_branches()
        if not branches:
            return formulas
        branch_atoms = [_constraint_to_atom(branch, names) for branch in branches]
        formulas.append(Or(*branch_atoms))
        return formulas

    def build_formulas(self, encoding: AttackEncoding) -> list[Formula]:
        """The assertion set for one query (exposed for tests and diagnostics).

        Static clauses first, stealth clauses last — the exact assertion
        order a session produces, so one-shot and incremental queries hand
        the DPLL(T) core the same problem.
        """
        names = encoding.variable_names
        formulas = self.static_formulas(encoding)
        for constraint in encoding.stealth_constraints(encoding.threshold):
            formulas.append(_constraint_to_atom(constraint, names))
        return formulas

    def open_session(self, encoding: AttackEncoding) -> SMTBackendSession:
        """Open the clause-caching incremental session for ``encoding``."""
        return SMTBackendSession(self, encoding)

    def solve(self, encoding: AttackEncoding, time_budget: float | None = None) -> BackendAnswer:
        """One-shot query: a session of length one over ``encoding``."""
        return self.open_session(encoding).solve(encoding.threshold, time_budget=time_budget)
