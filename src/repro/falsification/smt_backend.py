"""SMT attack-synthesis backend (the Z3 substitute path of the paper).

The whole Algorithm 1 assertion is translated into a single QF-LRA formula::

    AND(base constraints)  AND  OR(violation branches)

over one real variable per decision-vector component, and discharged to the
DPLL(T) solver in :mod:`repro.smt`.  Compared to the LP backend this handles
arbitrary Boolean structure (useful for the exact dead-zone semantics of
monitors) at the cost of speed.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.encoding import AttackEncoding
from repro.core.unroll import AffineConstraint
from repro.falsification.base import AttackBackend, BackendAnswer
from repro.smt.expr import Atom, Formula, Or
from repro.smt.linear import LinearExpr
from repro.smt.solver import Solver
from repro.utils.results import SolveStatus


def _constraint_to_atom(constraint: AffineConstraint, names: list[str]) -> Atom:
    """Translate ``row·theta + constant (<|<=) 0`` into an SMT atom."""
    coefficients = {
        names[index]: float(value)
        for index, value in enumerate(constraint.row)
        if abs(value) > 1e-15
    }
    expression = LinearExpr(coefficients, float(constraint.constant))
    return Atom(expression=expression, strict=bool(constraint.strict))


def _bounds_to_formulas(
    bounds: list[tuple[float | None, float | None]], names: list[str]
) -> list[Formula]:
    formulas: list[Formula] = []
    for index, (low, high) in enumerate(bounds):
        if low is not None:
            formulas.append(Atom(expression=LinearExpr({names[index]: -1.0}, float(low)), strict=False))
        if high is not None:
            formulas.append(Atom(expression=LinearExpr({names[index]: 1.0}, -float(high)), strict=False))
    return formulas


class SMTAttackBackend(AttackBackend):
    """DPLL(T)-based backend over the from-scratch QF-LRA solver."""

    name = "smt"

    def __init__(self, theory_check: str = "eager"):
        self.theory_check = theory_check

    def build_formulas(self, encoding: AttackEncoding) -> list[Formula]:
        """The assertion set for one query (exposed for tests and diagnostics)."""
        names = encoding.variable_names
        formulas: list[Formula] = []
        for constraint in encoding.base_constraints():
            formulas.append(_constraint_to_atom(constraint, names))
        formulas.extend(_bounds_to_formulas(encoding.variable_bounds(), names))
        branches = encoding.violation_branches()
        if not branches:
            return formulas
        branch_atoms = [_constraint_to_atom(branch, names) for branch in branches]
        formulas.append(Or(*branch_atoms))
        return formulas

    def solve(self, encoding: AttackEncoding, time_budget: float | None = None) -> BackendAnswer:
        start = time.monotonic()
        branches = encoding.violation_branches()
        if not branches:
            return BackendAnswer(status=SolveStatus.UNSAT, diagnostics={"branches": 0})

        names = encoding.variable_names
        solver = Solver(theory_check=self.theory_check, time_budget=time_budget)
        for formula in self.build_formulas(encoding):
            solver.add(formula)
        result = solver.check()

        diagnostics = dict(result.statistics)
        diagnostics.update({"backend": self.name, "elapsed": time.monotonic() - start})

        if result.status is SolveStatus.SAT:
            theta = np.array([result.real_model.get(name, 0.0) for name in names])
            return BackendAnswer(status=SolveStatus.SAT, theta=theta, diagnostics=diagnostics)
        return BackendAnswer(status=result.status, diagnostics=diagnostics)
