"""Simulation-based optimization falsifier (incomplete third backend).

Searches the attack space directly by simulating the closed loop and
minimising a robustness objective:

``robustness = margin(pfc) + penalty(stealth violations) + penalty(mdc alarms)``

A negative robustness with zero penalties means a stealthy successful attack
was found.  The search combines random restarts with Nelder–Mead polishing
from :func:`scipy.optimize.minimize`, which is the classical S-TaLiRo /
Breach-style falsification recipe.  The backend can never prove absence of
attacks (it returns ``UNKNOWN`` instead of ``UNSAT``); it exists as an
ablation point and as an independent cross-check of the formal backends.

Under a :class:`~repro.core.session.SynthesisSession` this backend runs
through the default :class:`~repro.falsification.base.BackendSession`: each
round rebinds the shared encoding to the candidate threshold (skipping the
horizon unrolling and static constraint rebuilds) and re-derives only the
stealth penalty terms — the objective itself is restart-stateful per call by
design, so there is no further solver state to cache.
"""

from __future__ import annotations

from repro.obs.clock import Stopwatch

import numpy as np
from scipy import optimize

from repro.core.encoding import AttackEncoding
from repro.falsification.base import AttackBackend, BackendAnswer
from repro.utils.results import SolveStatus
from repro.utils.rng import ensure_rng


class OptimizationFalsifier(AttackBackend):
    """Random-restart + Nelder–Mead falsification over the decision vector."""

    name = "optimizer"

    def __init__(
        self,
        restarts: int = 10,
        iterations_per_restart: int = 200,
        seed: int | None = 0,
        penalty_weight: float = 100.0,
    ):
        self.restarts = int(restarts)
        self.iterations_per_restart = int(iterations_per_restart)
        self.seed = seed
        self.penalty_weight = float(penalty_weight)

    # ------------------------------------------------------------------
    def _objective(self, encoding: AttackEncoding):
        base = encoding.base_constraints()
        branches = encoding.violation_branches()

        def robustness(theta: np.ndarray) -> float:
            theta = np.asarray(theta, dtype=float)
            penalty = 0.0
            for constraint in base:
                value = float(constraint.row @ theta) + constraint.constant
                if value > 0:
                    penalty += value
            # Distance to the closest pfc-violation branch (want <= 0).
            branch_values = [float(b.row @ theta) + b.constant for b in branches]
            violation_margin = min(branch_values) if branch_values else np.inf
            return violation_margin + self.penalty_weight * penalty

        return robustness

    def _initial_scale(self, encoding: AttackEncoding) -> float:
        bound = encoding.problem.attack_bound
        if bound is None:
            return 1.0
        bound_array = np.asarray(bound, dtype=float).reshape(-1)
        return float(np.max(bound_array))

    def solve(self, encoding: AttackEncoding, time_budget: float | None = None) -> BackendAnswer:
        start = Stopwatch()
        branches = encoding.violation_branches()
        if not branches:
            return BackendAnswer(status=SolveStatus.UNSAT, diagnostics={"branches": 0})

        rng = ensure_rng(self.seed)
        objective = self._objective(encoding)
        bounds = encoding.variable_bounds()
        scale = self._initial_scale(encoding)
        n = encoding.n_variables

        best_theta = None
        best_value = np.inf
        evaluations = 0
        for restart in range(self.restarts):
            if start.exceeded(time_budget):
                break
            theta0 = rng.uniform(-scale, scale, size=n)
            for index, (low, high) in enumerate(bounds):
                if low is not None:
                    theta0[index] = max(theta0[index], low)
                if high is not None:
                    theta0[index] = min(theta0[index], high)
            result = optimize.minimize(
                objective,
                theta0,
                method="Nelder-Mead",
                options={"maxiter": self.iterations_per_restart, "xatol": 1e-6, "fatol": 1e-9},
            )
            evaluations += int(result.nfev)
            if result.fun < best_value:
                best_value = float(result.fun)
                best_theta = np.asarray(result.x, dtype=float)
            if best_value <= 0.0 and encoding.theta_satisfies_base(best_theta):
                return BackendAnswer(
                    status=SolveStatus.SAT,
                    theta=best_theta,
                    diagnostics={
                        "backend": self.name,
                        "restarts_used": restart + 1,
                        "objective": best_value,
                        "evaluations": evaluations,
                        "elapsed": start.elapsed(),
                    },
                )

        return BackendAnswer(
            status=SolveStatus.UNKNOWN,
            diagnostics={
                "backend": self.name,
                "best_objective": best_value,
                "evaluations": evaluations,
                "elapsed": start.elapsed(),
            },
        )
