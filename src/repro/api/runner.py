"""Batch execution of :class:`~repro.api.config.ExperimentSpec` sweeps.

:class:`BatchRunner` expands a spec's case-study × backend × algorithm grid
into :class:`~repro.api.config.ExperimentUnit` cells, groups the cells that
share a ``(case_study, backend)`` pair into one
:func:`~repro.api.execute.run_pipeline` call — so the Algorithm 1
vulnerability check, the incremental
:class:`~repro.core.session.SynthesisSession` (one encoding + solver state
for every synthesis round of every algorithm in the group) and the
Monte-Carlo FAR population are all shared once per
pair instead of once per algorithm — and executes the groups either serially
(with case studies built once per name) or fanned out over a
``multiprocessing`` pool.  Each cell yields one :class:`ExperimentRow`;
failures are captured per row instead of aborting the sweep.  Rows are
sorted by ``(case_study, backend, algorithm)`` so result tables and JSON
exports are reproducible run-to-run regardless of execution order.
"""

from __future__ import annotations

import json
import multiprocessing
from dataclasses import dataclass, field

from repro.api.config import ExperimentSpec, ExperimentUnit, FARConfig, SynthesisConfig, _checked_fields
from repro.api.execute import run_pipeline
from repro.registry import CASE_STUDIES


@dataclass
class ExperimentRow:
    """Outcome of one grid cell (all fields JSON-native).

    ``status`` is the final solver verdict (``"sat"``/``"unsat"``/
    ``"unknown"``) or ``"error"`` when the cell raised; in the latter case
    ``error`` holds the exception summary and the metric fields stay ``None``.
    """

    case_study: str
    backend: str
    algorithm: str
    status: str = "unknown"
    vulnerable: bool | None = None
    converged: bool | None = None
    rounds: int | None = None
    solver_time_s: float | None = None
    false_alarm_rate: float | None = None
    error: str | None = None

    @property
    def sort_key(self) -> tuple[str, str, str]:
        """The stable ordering key of the result table."""
        return (self.case_study, self.backend, self.algorithm)

    def to_dict(self) -> dict:
        """Plain-data representation (JSON-compatible)."""
        return {
            "case_study": self.case_study,
            "backend": self.backend,
            "algorithm": self.algorithm,
            "status": self.status,
            "vulnerable": self.vulnerable,
            "converged": self.converged,
            "rounds": self.rounds,
            "solver_time_s": self.solver_time_s,
            "false_alarm_rate": self.false_alarm_rate,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentRow":
        """Rebuild from :meth:`to_dict` output."""
        return cls(**_checked_fields(cls, data))


@dataclass
class ExperimentResult:
    """Structured result table of one :func:`run_experiments` call."""

    spec: ExperimentSpec
    rows: list[ExperimentRow] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    # ------------------------------------------------------------------
    def select(self, **criteria) -> list[ExperimentRow]:
        """Rows whose fields equal every ``criteria`` entry
        (e.g. ``result.select(case_study="vsc", algorithm="pivot")``)."""
        return [
            row
            for row in self.rows
            if all(getattr(row, key) == value for key, value in criteria.items())
        ]

    def summary_rows(self) -> list[dict]:
        """One plain dict per row, in the stable sort order."""
        return [row.to_dict() for row in sorted(self.rows, key=lambda row: row.sort_key)]

    @property
    def errors(self) -> list[ExperimentRow]:
        """Rows that failed with an exception."""
        return [row for row in self.rows if row.error is not None]

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data representation (JSON-compatible)."""
        return {"spec": self.spec.to_dict(), "rows": self.summary_rows()}

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentResult":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            spec=ExperimentSpec.from_dict(data["spec"]),
            rows=[ExperimentRow.from_dict(row) for row in data["rows"]],
        )

    def to_json(self, indent: int | None = 2) -> str:
        """JSON string form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Rebuild from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Group execution (shared by the serial path and the worker processes).
# ----------------------------------------------------------------------
def _group_payloads(units: list[ExperimentUnit]) -> list[dict]:
    """Merge cells sharing ``(case_study, backend)`` into one execution payload.

    One pipeline run per group shares the vulnerability check and the FAR
    benign population across that group's algorithms.
    """
    groups: dict[tuple[str, str], dict] = {}
    for unit in units:
        key = (unit.case_study, unit.backend)
        group = groups.get(key)
        if group is None:
            group = unit.to_dict()
            group["algorithms"] = []
            del group["algorithm"]
            groups[key] = group
        group["algorithms"].append(unit.algorithm)
    return list(groups.values())


def _execute_group(group: dict, case=None) -> list[dict]:
    """Run one ``(case_study, backend)`` group, one row dict per algorithm.

    Any failure — case-study build, synthesis, FAR — is recorded on every
    row of the group instead of aborting the sweep.  ``case`` may be a
    pre-built case study, a cached build exception to re-raise, or ``None``
    to build from the group's options.
    """
    algorithms = list(group["algorithms"])
    far = group.get("far")
    try:
        if isinstance(case, Exception):
            raise case
        if case is None:
            case = CASE_STUDIES.create(group["case_study"], **group["case_study_options"])
        report = run_pipeline(
            case.problem,
            synthesis=SynthesisConfig(
                algorithms=tuple(algorithms),
                backend=group["backend"],
                max_rounds=group["max_rounds"],
                min_threshold=group["min_threshold"],
            ),
            far=FARConfig.from_dict(far) if isinstance(far, dict) else far,
        )
    except Exception as exc:  # noqa: BLE001 - one bad group must not kill the sweep
        error = f"{type(exc).__name__}: {exc}"
        return [
            ExperimentRow(
                case_study=group["case_study"],
                backend=group["backend"],
                algorithm=algorithm,
                status="error",
                error=error,
            ).to_dict()
            for algorithm in algorithms
        ]

    rows = []
    for algorithm in algorithms:
        result = report.synthesis[algorithm]
        row = ExperimentRow(
            case_study=group["case_study"],
            backend=group["backend"],
            algorithm=algorithm,
            status=result.status.value,
            vulnerable=report.is_vulnerable,
            converged=result.converged,
            rounds=result.rounds,
            solver_time_s=round(result.total_solver_time, 3),
        )
        if report.far_study is not None:
            row.false_alarm_rate = report.far_study.rates.get(algorithm)
        rows.append(row.to_dict())
    return rows


class BatchRunner:
    """Expand and execute an :class:`~repro.api.config.ExperimentSpec`.

    Parameters
    ----------
    spec:
        The sweep description (an :class:`ExperimentSpec` or its ``to_dict``
        form).
    workers:
        ``None``/``0``/``1`` runs serially in-process (case studies are then
        built once per name and shared across cells); ``>= 2`` fans the grid
        out over a ``multiprocessing`` pool of that many workers.
    """

    def __init__(self, spec: ExperimentSpec | dict, workers: int | None = None):
        if isinstance(spec, dict):
            spec = ExperimentSpec.from_dict(spec)
        self.spec = spec
        self.workers = int(workers) if workers else 0

    # ------------------------------------------------------------------
    def run(self) -> ExperimentResult:
        """Execute every grid cell and return the sorted result table."""
        units = self.spec.expand()
        if self.workers >= 2:
            rows = self._run_pool(units)
        else:
            rows = self._run_serial(units)
        rows.sort(key=lambda row: row.sort_key)
        return ExperimentResult(spec=self.spec, rows=rows)

    # ------------------------------------------------------------------
    def _run_serial(self, units: list[ExperimentUnit]) -> list[ExperimentRow]:
        # Case studies are built once per name; a failing builder is cached
        # as its exception so it is reported (not retried) for every group.
        cases: dict[str, object] = {}
        rows = []
        for group in _group_payloads(units):
            name = group["case_study"]
            if name not in cases:
                try:
                    cases[name] = CASE_STUDIES.create(name, **group["case_study_options"])
                except Exception as exc:  # noqa: BLE001 - recorded per-row below
                    cases[name] = exc
            rows.extend(
                ExperimentRow.from_dict(row)
                for row in _execute_group(group, case=cases[name])
            )
        return rows

    def _run_pool(self, units: list[ExperimentUnit]) -> list[ExperimentRow]:
        payloads = _group_payloads(units)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            context = multiprocessing.get_context("spawn")
        with context.Pool(processes=min(self.workers, len(payloads) or 1)) as pool:
            results = pool.map(_execute_group, payloads)
        return [ExperimentRow.from_dict(row) for result in results for row in result]


def run_experiments(
    spec: ExperimentSpec | dict, workers: int | None = None
) -> ExperimentResult:
    """One-call batch entry point: expand ``spec``, execute it, return the table.

    Parameters
    ----------
    spec:
        An :class:`~repro.api.config.ExperimentSpec` (or its ``to_dict``
        form) describing the case-study × backend × algorithm grid.
    workers:
        Optional ``multiprocessing`` fan-out (see :class:`BatchRunner`).
    """
    return BatchRunner(spec, workers=workers).run()
