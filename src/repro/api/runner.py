"""Batch execution of :class:`~repro.api.config.ExperimentSpec` sweeps.

:class:`BatchRunner` expands a spec's case-study × backend × algorithm grid
into :class:`~repro.api.config.ExperimentUnit` cells, groups the cells that
share every setting but the algorithm into one
:func:`~repro.api.execute.run_pipeline` call — so the Algorithm 1
vulnerability check, the incremental
:class:`~repro.core.session.SynthesisSession` (one encoding + solver state
for every synthesis round of every algorithm in the group) and the
Monte-Carlo FAR population are all shared once per
group instead of once per algorithm — and executes the groups either serially
(with case studies built once per name) or fanned out over a
``multiprocessing`` pool.  Each cell yields one :class:`ExperimentRow`;
failures are captured per row instead of aborting the sweep.  Rows are
sorted by ``(case_study, backend, algorithm)`` so result tables and JSON
exports are reproducible run-to-run regardless of execution order.

Two extensions serve :mod:`repro.explore`:

* heterogeneous unit lists (cells differing in horizon, synthesis knobs,
  FAR settings, ...) execute through :meth:`BatchRunner.run_units`, which
  returns rows aligned with the input units;
* a ``store=`` kwarg (path or :class:`repro.explore.store.ResultStore`)
  content-addresses every unit by the *pair* of keys
  :func:`repro.explore.store.split_unit_keys` derives from its ``to_dict()``
  payload — a synthesis key (problem + synthesizer + backend + synthesis
  knobs + relax stage) and an evaluation key (FAR population + probe):
  already-stored units are served from disk without any solver work, and a
  unit whose synthesis half is stored (an already-synthesized point being
  re-evaluated under different noise/FAR/probe settings) re-runs **only**
  the evaluation half, with zero solver calls.  Fresh clean rows and
  synthesis records are appended the moment their group completes.
  Rows carrying any failure — a cell error or a best-effort probe error —
  are never persisted, so transient failures re-run on the next attempt.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from dataclasses import dataclass, field

import numpy as np

from repro.api.config import ExperimentSpec, ExperimentUnit, FARConfig, SynthesisConfig, _checked_fields
from repro.api.execute import run_pipeline, synthesis_record
from repro.obs.clock import Stopwatch
from repro.obs.metrics import MetricsRegistry, get_registry, metrics_enabled, use_registry
from repro.registry import CASE_STUDIES
from repro.utils.validation import ValidationError


def default_workers() -> int:
    """Worker count bounded by this process's CPU *affinity*, not the machine.

    ``len(os.sched_getaffinity(0))`` respects container/cgroup CPU limits
    (a CI runner pinned to 2 cores reports 2, not the host's 64); platforms
    without ``sched_getaffinity`` fall back to ``os.cpu_count()``.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _resolve_workers(workers) -> int:
    """Normalize the ``workers`` argument (``"auto"`` → CPU affinity count)."""
    if workers == "auto":
        return default_workers()
    return int(workers) if workers else 0


@dataclass
class ExperimentRow:
    """Outcome of one grid cell (all fields JSON-native).

    ``status`` is the final solver verdict (``"sat"``/``"unsat"``/
    ``"unknown"``) or ``"error"`` when the cell raised; in the latter case
    ``error`` holds the exception summary and the metric fields stay ``None``.
    ``metrics`` carries auxiliary JSON-native measurements: the synthesized
    detector's ``stealth_margin`` (mean finite threshold — the residue room
    a stealthy attacker retains) and, when the unit requested an online
    probe, ``detection_rate`` / ``mean_detection_latency`` from deploying
    the synthesized threshold on a small attacked fleet.
    """

    case_study: str
    backend: str
    algorithm: str
    status: str = "unknown"
    vulnerable: bool | None = None
    converged: bool | None = None
    rounds: int | None = None
    solver_time_s: float | None = None
    false_alarm_rate: float | None = None
    error: str | None = None
    metrics: dict = field(default_factory=dict)

    @property
    def sort_key(self) -> tuple[str, str, str]:
        """The stable ordering key of the result table."""
        return (self.case_study, self.backend, self.algorithm)

    def to_dict(self) -> dict:
        """Plain-data representation (JSON-compatible)."""
        return {
            "case_study": self.case_study,
            "backend": self.backend,
            "algorithm": self.algorithm,
            "status": self.status,
            "vulnerable": self.vulnerable,
            "converged": self.converged,
            "rounds": self.rounds,
            "solver_time_s": self.solver_time_s,
            "false_alarm_rate": self.false_alarm_rate,
            "error": self.error,
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentRow":
        """Rebuild from :meth:`to_dict` output (``metrics`` optional)."""
        return cls(**_checked_fields(cls, data))


@dataclass
class ExperimentResult:
    """Structured result table of one :func:`run_experiments` call."""

    spec: ExperimentSpec
    rows: list[ExperimentRow] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    # ------------------------------------------------------------------
    def select(self, **criteria) -> list[ExperimentRow]:
        """Rows whose fields equal every ``criteria`` entry
        (e.g. ``result.select(case_study="vsc", algorithm="pivot")``)."""
        return [
            row
            for row in self.rows
            if all(getattr(row, key) == value for key, value in criteria.items())
        ]

    def summary_rows(self) -> list[dict]:
        """One plain dict per row, in the stable sort order."""
        return [row.to_dict() for row in sorted(self.rows, key=lambda row: row.sort_key)]

    @property
    def errors(self) -> list[ExperimentRow]:
        """Rows that failed with an exception."""
        return [row for row in self.rows if row.error is not None]

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data representation (JSON-compatible)."""
        return {"spec": self.spec.to_dict(), "rows": self.summary_rows()}

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentResult":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            spec=ExperimentSpec.from_dict(data["spec"]),
            rows=[ExperimentRow.from_dict(row) for row in data["rows"]],
        )

    def to_json(self, indent: int | None = 2) -> str:
        """JSON string form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Rebuild from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Group execution (shared by the serial path and the worker processes).
# ----------------------------------------------------------------------
def _group_units(units: list[ExperimentUnit]) -> list[tuple[dict, list[int]]]:
    """Merge cells sharing everything but the algorithm into one payload.

    One pipeline run per group shares the vulnerability check, the
    incremental synthesis session and the FAR benign population across that
    group's algorithms.  Returns ``(payload, unit_indices)`` pairs; the
    payload's ``algorithms`` list and the index list are aligned, as are the
    row dicts :func:`_execute_group` returns.
    """
    groups: dict[str, tuple[dict, list[int]]] = {}
    for index, unit in enumerate(units):
        payload = unit.to_dict()
        algorithm = payload.pop("algorithm")
        key = json.dumps(payload, sort_keys=True)
        entry = groups.get(key)
        if entry is None:
            payload["algorithms"] = []
            entry = (payload, [])
            groups[key] = entry
        entry[0]["algorithms"].append(algorithm)
        entry[1].append(index)
    return list(groups.values())


def _stealth_margin(threshold) -> float | None:
    """Mean finite threshold value — the stealthy attacker's residue room.

    Lower thresholds leave less room below the detection boundary (tighter
    security) at the price of more benign alarms; ``None`` when no finite
    threshold was placed (nothing synthesized or plant not vulnerable).
    """
    if threshold is None:
        return None
    finite = threshold.values[np.isfinite(threshold.values)]
    if finite.size == 0:
        return None
    return float(np.mean(finite))


def _probe_fleet(problem, probe: dict, detector, attack_options: dict) -> tuple:
    """One probe fleet run: ``(detection_rate, mean_detection_latency)``."""
    from repro.registry import ATTACK_TEMPLATES
    from repro.runtime.engine import _default_noise_model
    from repro.runtime.fleet import FleetSimulator, ScheduledAttack

    attack_spec = dict(probe.get("attack") or {"template": "bias"})
    template = ATTACK_TEMPLATES.create(
        attack_spec.get("template", "bias"), **attack_options
    )
    attack = ScheduledAttack(template=template, start=int(attack_spec.get("start", 0)))
    noise_model = _default_noise_model(problem, float(probe.get("noise_scale", 1.0)))
    simulator = FleetSimulator(
        problem.system,
        int(probe.get("n_instances", 24)),
        int(probe.get("horizon") or problem.horizon),
        detectors={"probe": detector},
        noise_model=noise_model,
        attacks=[attack],
        seed=probe.get("seed", 0),
    )
    stats = simulator.run().detectors["probe"]
    latency = stats.mean_detection_latency
    return stats.detection_rate, None if latency is None else float(latency)


def rung_metric(name: str, multiplier: float) -> str:
    """Metric key of one attack-ladder rung (``"<name>_x<multiplier>"``)."""
    return f"{name}_x{multiplier:g}"


def _ladder_aggregate(rungs: list[tuple[float, float | None, float | None]], horizon: int) -> dict:
    """Fold per-rung ``(multiplier, rate, latency)`` probes into metrics.

    A rung that attacked but detected nothing (``rate`` measured, ``latency``
    ``None``) is *censored at the probe horizon* in the latency aggregate:
    never detecting a weak attack must score worse than detecting it slowly,
    otherwise the minimized latency objective would reward missing the
    near-threshold rungs the ladder exists to resolve.  Rungs that attacked
    nothing at all (``rate is None`` — a zero-magnitude bias from an all-zero
    candidate) contribute to neither aggregate.
    """
    rates, latencies, metrics = [], [], {}
    for multiplier, rate, latency in rungs:
        if rate is not None:
            rates.append(rate)
            latencies.append(float(horizon) if latency is None else latency)
        metrics[rung_metric("detection_rate", multiplier)] = rate
        metrics[rung_metric("mean_detection_latency", multiplier)] = (
            None if latency is None else round(latency, 4)
        )
    metrics["detection_rate"] = sum(rates) / len(rates) if rates else None
    metrics["mean_detection_latency"] = (
        round(sum(latencies) / len(latencies), 4) if latencies else None
    )
    return metrics


def _run_probe(problem, probe: dict, threshold, scalar: float) -> dict:
    """Deploy one synthesized threshold online and measure detection latency.

    ``probe`` schema (all JSON-native, part of the unit's content address)::

        {"detector": "online-residue" | "online-cusum",
         "n_instances": int, "horizon": int | None, "noise_scale": float,
         "attack": {"template": name, "options": {...}, "start": int},
         "biases": [float, ...] | absent,
         "seed": int}

    The synthesized threshold is deployed in the named online form and
    streamed on a fleet of ``n_instances`` attacked plant instances under
    the FAR study's benign noise envelope at ``noise_scale`` sigma:
    ``online-residue`` deploys the per-step threshold vector as-is, while
    ``online-cusum`` is a *derived* heuristic — it accumulates residue
    excess over the candidate's mean finite threshold (``bias``) and alarms
    after one threshold-unit of cumulative excess, so candidates with very
    different per-step profiles but equal means probe identically.

    **Attack ladder.**  When ``biases`` is present (a ``bias``-template
    probe with no explicit magnitude), the fleet is run once per rung with
    the attack magnitude set to ``multiplier x`` the detector's own mean
    threshold, and the metrics carry one ``detection_rate_x<m>`` /
    ``mean_detection_latency_x<m>`` column per rung next to the aggregates
    (rate = mean over rungs; latency = mean over rungs with a missed rung
    censored at the probe horizon, so never detecting a weak attack scores
    worse than detecting it slowly).  A near-threshold rung (1.1x) takes
    many steps to detect where a blatant rung (3x) alarms almost
    immediately, so the aggregate latency actually differentiates
    candidates instead of collapsing to 0–1 steps everywhere.  Without
    ``biases``, a single run is made; a ``bias`` attack with no explicit
    magnitude then defaults to ``3 x`` the mean threshold, the historical
    behaviour.
    """
    attack_spec = dict(probe.get("attack") or {"template": "bias"})
    options = dict(attack_spec.get("options") or {})
    template_name = attack_spec.get("template", "bias")

    detector_name = probe.get("detector", "online-residue")
    if detector_name in ("online-residue", "residue"):
        detector = threshold
    elif detector_name in ("online-cusum", "cusum"):
        from repro.runtime.online import OnlineCusum

        detector = OnlineCusum(bias=scalar, threshold=scalar, norm=threshold.norm)
    else:
        raise ValidationError(
            f"probe detector {detector_name!r} cannot be deployed from a "
            "synthesized threshold; supported: online-residue, online-cusum"
        )

    biases = probe.get("biases")
    if biases and template_name == "bias" and "bias" not in options:
        rungs = []
        for multiplier in biases:
            multiplier = float(multiplier)
            rung_options = dict(options, bias=multiplier * scalar)
            rate, latency = _probe_fleet(problem, probe, detector, rung_options)
            rungs.append((multiplier, rate, latency))
        return _ladder_aggregate(rungs, int(probe.get("horizon") or problem.horizon))

    if template_name == "bias" and "bias" not in options:
        options["bias"] = 3.0 * scalar
    rate, latency = _probe_fleet(problem, probe, detector, options)
    return {
        "detection_rate": rate,
        "mean_detection_latency": None if latency is None else round(latency, 4),
    }


def _execute_group(group: dict, case=None) -> dict:
    """Run one unit group; rows and synthesis records aligned per algorithm.

    Returns ``{"rows": [row dict per algorithm], "synthesis_records":
    {algorithm: record}}`` — the records are the reusable synthesis-half
    payloads (:func:`repro.api.execute.synthesis_record`) the store files
    under synthesis keys.  ``group["presynthesized"]`` may carry such
    records for a subset of the algorithms; those skip all solver work and
    re-run only the FAR/probe evaluation half.

    Any failure — case-study build, synthesis, FAR — is recorded on every
    row of the group instead of aborting the sweep.  ``case`` may be a
    pre-built case study, a cached build exception to re-raise, or ``None``
    to build from the group's options.  Probe failures only void the probe
    metrics of the affected row (``metrics["probe_error"]``), never the
    synthesis outcome.

    When metrics are enabled (pool workers inherit the enabled flag at
    fork), the group runs inside a *fresh scoped registry* whose snapshot
    ships back on ``result["metrics"]`` — one registry per group, so a
    long-lived worker never double-counts across groups and the parent can
    :meth:`~repro.obs.metrics.MetricsRegistry.merge` every group exactly
    once.  ``result["elapsed_s"]`` carries the group's wall time for the
    parent's utilization accounting either way.
    """
    started = Stopwatch()
    if metrics_enabled():
        with use_registry(MetricsRegistry(enabled=True)) as scoped:
            result = _execute_group_body(group, case)
            result["metrics"] = scoped.snapshot()
    else:
        result = _execute_group_body(group, case)
    result["elapsed_s"] = started.elapsed()
    return result


def _execute_group_body(group: dict, case=None) -> dict:
    """The uninstrumented group execution behind :func:`_execute_group`."""
    algorithms = list(group["algorithms"])
    far = group.get("far")
    probe = group.get("probe")
    try:
        if isinstance(case, Exception):
            raise case
        if case is None:
            case = CASE_STUDIES.create(group["case_study"], **group["case_study_options"])
        report = run_pipeline(
            case.problem,
            synthesis=SynthesisConfig(
                algorithms=tuple(algorithms),
                backend=group["backend"],
                max_rounds=group["max_rounds"],
                min_threshold=group["min_threshold"],
                relax=group.get("relax"),
            ),
            far=FARConfig.from_dict(far) if isinstance(far, dict) else far,
            presynthesized=group.get("presynthesized"),
        )
    except Exception as exc:  # repro: noqa REP003 — one bad group must not kill the sweep
        error = f"{type(exc).__name__}: {exc}"
        return {
            "rows": [
                ExperimentRow(
                    case_study=group["case_study"],
                    backend=group["backend"],
                    algorithm=algorithm,
                    status="error",
                    error=error,
                ).to_dict()
                for algorithm in algorithms
            ],
            "synthesis_records": {},
        }

    rows = []
    for algorithm in algorithms:
        result = report.synthesis[algorithm]
        row = ExperimentRow(
            case_study=group["case_study"],
            backend=group["backend"],
            algorithm=algorithm,
            status=result.status.value,
            vulnerable=report.is_vulnerable,
            converged=result.converged,
            rounds=result.rounds,
            solver_time_s=round(result.total_solver_time, 3),
        )
        if report.far_study is not None:
            row.false_alarm_rate = report.far_study.rates.get(algorithm)
        deployed = report.deployed_threshold(algorithm)
        relaxed = report.relaxation.get(algorithm)
        if relaxed is not None:
            # Both vectors ride on the row: the deployed (relaxed) margin
            # under the historical key, the raw one alongside.
            raw_margin = _stealth_margin(result.threshold)
            if raw_margin is not None:
                row.metrics["stealth_margin_raw"] = raw_margin
            row.metrics["relax_certified"] = relaxed.certified
            if report.far_study is not None:
                from repro.api.execute import RAW_FAR_SUFFIX

                raw_rate = report.far_study.rates.get(algorithm + RAW_FAR_SUFFIX)
                if raw_rate is not None:
                    row.metrics["false_alarm_rate_raw"] = raw_rate
        margin = _stealth_margin(deployed)
        if margin is not None:
            row.metrics["stealth_margin"] = margin
            if probe is not None:
                try:
                    row.metrics.update(
                        _run_probe(case.problem, probe, deployed, margin)
                    )
                except Exception as exc:  # repro: noqa REP003 — probe is best-effort, errors ride on the row
                    row.metrics["probe_error"] = f"{type(exc).__name__}: {exc}"
        rows.append(row.to_dict())
    return {
        "rows": rows,
        "synthesis_records": {
            algorithm: synthesis_record(report, algorithm) for algorithm in algorithms
        },
    }


class BatchRunner:
    """Expand and execute an :class:`~repro.api.config.ExperimentSpec`.

    Parameters
    ----------
    spec:
        The sweep description (an :class:`ExperimentSpec` or its ``to_dict``
        form); may be ``None`` when only :meth:`run_units` is used.
    workers:
        ``None``/``0``/``1`` runs serially in-process (case studies are then
        built once per options payload and shared across cells); ``>= 2``
        fans the grid out over a ``multiprocessing`` pool of that many
        workers; ``"auto"`` sizes the pool from the process's CPU affinity
        (container-safe, see :func:`default_workers`).
    store:
        Optional content-addressed result store (a path or a
        :class:`repro.explore.store.ResultStore`): units whose canonical
        config hash is already stored are served from disk; fresh non-error
        rows are appended after execution.
    """

    def __init__(
        self,
        spec: ExperimentSpec | dict | None = None,
        workers: int | str | None = None,
        store=None,
    ):
        if isinstance(spec, dict):
            spec = ExperimentSpec.from_dict(spec)
        self.spec = spec
        self.workers = _resolve_workers(workers)
        # Imported lazily: repro.explore builds on this module.
        from repro.explore.store import as_store

        self.store = as_store(store)
        #: Units whose synthesis half was served from the store (cumulative).
        self.synthesis_reused = 0

    # ------------------------------------------------------------------
    def run(self) -> ExperimentResult:
        """Execute every grid cell and return the sorted result table."""
        if self.spec is None:
            raise ValidationError("BatchRunner.run() needs a spec; use run_units() otherwise")
        rows = [row for _, row in self.run_units(self.spec.expand())]
        rows.sort(key=lambda row: row.sort_key)
        return ExperimentResult(spec=self.spec, rows=rows)

    # ------------------------------------------------------------------
    def run_units(
        self, units: list[ExperimentUnit]
    ) -> list[tuple[str | None, ExperimentRow]]:
        """Execute a heterogeneous unit list; rows aligned with the input.

        Returns ``(key, row)`` pairs where ``key`` is the unit's content
        address (``None`` when no store is configured).  Stored units are
        served without executing; units whose *synthesis half* is stored
        re-run only the FAR/probe evaluation (zero solver calls, counted in
        :attr:`synthesis_reused`); fresh non-error rows and their synthesis
        records are persisted.
        """
        from repro.explore.store import synthesis_store_key, unit_store_key

        registry = get_registry()
        registry.counter(
            "batch_units_total", help="Experiment units submitted to run_units."
        ).inc(len(units))
        store_hits = registry.counter(
            "batch_store_hits_total", help="Units served whole from the result store."
        )
        store_misses = registry.counter(
            "batch_store_misses_total", help="Units that had to execute (store miss)."
        )
        synthesis_reuse = registry.counter(
            "batch_synthesis_reuse_total",
            help="Units whose synthesis half was reused from the store.",
        )

        keys: list[str | None] = []
        rows: dict[int, ExperimentRow] = {}
        pending: list[tuple[int, ExperimentUnit]] = []
        presynthesized: list[dict | None] = []
        for index, unit in enumerate(units):
            key = unit_store_key(unit.to_dict()) if self.store is not None else None
            keys.append(key)
            cached = self.store.get(key) if self.store is not None else None
            if cached is not None:
                rows[index] = ExperimentRow.from_dict(cached)
                store_hits.inc()
                continue
            if self.store is not None:
                store_misses.inc()
            record = None
            if self.store is not None:
                # ``peek``: a synthesis-half reuse is not a row hit, so it
                # must not disturb the hit/miss counters callers report.
                record = self.store.peek(synthesis_store_key(unit.to_dict()))
                if record is not None:
                    self.synthesis_reused += 1
                    synthesis_reuse.inc()
            pending.append((index, unit))
            presynthesized.append(record)

        def persist(local_index: int, row: ExperimentRow, record: dict | None) -> None:
            # Called the moment a group finishes, so an interrupted batch
            # keeps every completed row — that is the store's resume story.
            # Rows with any failure (cell error or best-effort probe error)
            # are never persisted: the store is first-write-wins, so caching
            # them would pin a transient failure forever.  Synthesis records
            # only require the solver half to have succeeded, so they are
            # persisted even when a best-effort probe failed.
            index, unit = pending[local_index]
            rows[index] = row
            if self.store is None:
                return
            if record is not None and row.error is None:
                config = unit.to_dict()
                self.store.put(synthesis_store_key(config), config, record)
            clean = row.error is None and "probe_error" not in row.metrics
            if clean:
                self.store.put(keys[index], unit.to_dict(), row.to_dict())

        self._execute_units(
            [unit for _, unit in pending],
            presynthesized=presynthesized,
            on_result=persist,
        )
        if self.store is not None:
            self.store.flush()
        return [(keys[index], rows[index]) for index in range(len(units))]

    # ------------------------------------------------------------------
    def _execute_units(
        self,
        units: list[ExperimentUnit],
        presynthesized: list[dict | None] | None = None,
        on_result=None,
    ) -> list[ExperimentRow]:
        """Execute heterogeneous units; ``on_result(i, row, record)`` streams.

        ``presynthesized`` (aligned with ``units``) carries stored
        synthesis-half records; covered units skip all solver work.  The
        callback fires as soon as a unit's group completes (serial: per
        group; pool: as ``imap`` results arrive in order), not at batch end,
        with the unit's fresh-or-reused synthesis record as third argument.
        """
        rows: list[ExperimentRow | None] = [None] * len(units)
        if not units:
            return rows
        registry = get_registry()
        group_seconds = registry.histogram(
            "batch_group_seconds", help="Wall time per executed unit group."
        )
        busy_seconds = 0.0
        started = Stopwatch()
        grouped = _group_units(units)
        if presynthesized is not None and any(presynthesized):
            for payload, indices in grouped:
                records = {
                    units[index].algorithm: presynthesized[index]
                    for index in indices
                    if presynthesized[index] is not None
                }
                if records:
                    payload["presynthesized"] = records
        payloads = [payload for payload, _ in grouped]

        def deliver(indices: list[int], result: dict) -> None:
            nonlocal busy_seconds
            elapsed = result.get("elapsed_s")
            if elapsed is not None:
                busy_seconds += elapsed
                group_seconds.observe(elapsed)
            # Each group ran inside its own scoped registry (fresh per group,
            # whether in-process or in a pool worker); merging its snapshot
            # here folds worker telemetry into the parent exactly once.
            shipped = result.get("metrics")
            if shipped is not None:
                registry.merge(shipped)
            records = result.get("synthesis_records", {})
            for index, row_dict in zip(indices, result["rows"]):
                row = ExperimentRow.from_dict(row_dict)
                rows[index] = row
                if on_result is not None:
                    on_result(index, row, records.get(row.algorithm))

        pool_size = 1
        if self.workers >= 2 and len(payloads) > 1:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                context = multiprocessing.get_context("spawn")
            pool_size = min(self.workers, len(payloads))
            with context.Pool(processes=pool_size) as pool:
                for (_, indices), result in zip(
                    grouped, pool.imap(_execute_group, payloads)
                ):
                    deliver(indices, result)
        else:
            # Case studies are built once per (name, options) payload; a
            # failing builder is cached as its exception so it is reported
            # (not retried) for every group.
            cases: dict[str, object] = {}
            for payload, indices in grouped:
                cache_key = json.dumps(
                    {"name": payload["case_study"], "options": payload["case_study_options"]},
                    sort_keys=True,
                )
                if cache_key not in cases:
                    try:
                        cases[cache_key] = CASE_STUDIES.create(
                            payload["case_study"], **payload["case_study_options"]
                        )
                    except Exception as exc:  # repro: noqa REP003 — builder errors are recorded per-row
                        cases[cache_key] = exc
                deliver(indices, _execute_group(payload, case=cases[cache_key]))
        wall = started.elapsed()
        registry.gauge(
            "batch_workers", help="Pool size of the last _execute_units call."
        ).set(pool_size)
        if wall > 0:
            # Fraction of the pool's capacity spent inside groups: summed
            # per-group wall time over (batch wall x pool size).
            registry.gauge(
                "batch_worker_utilization",
                help="Busy fraction of the worker pool over the last batch.",
            ).set(busy_seconds / (wall * pool_size))
        return rows


def run_experiments(
    spec: ExperimentSpec | dict, workers: int | str | None = None, store=None
) -> ExperimentResult:
    """One-call batch entry point: expand ``spec``, execute it, return the table.

    Parameters
    ----------
    spec:
        An :class:`~repro.api.config.ExperimentSpec` (or its ``to_dict``
        form) describing the case-study × backend × algorithm grid.
    workers:
        Optional ``multiprocessing`` fan-out (see :class:`BatchRunner`);
        ``"auto"`` sizes the pool from the CPU affinity.
    store:
        Optional content-addressed result store (see :class:`BatchRunner`).
    """
    return BatchRunner(spec, workers=workers, store=store).run()
