"""Declarative, JSON-serializable experiment configuration objects.

Three dataclasses replace the kwargs plumbing of the original
:class:`~repro.core.pipeline.SynthesisPipeline`:

* :class:`SynthesisConfig` — which algorithms to run, on which backend, with
  which refinement knobs;
* :class:`FARConfig` — how to build the benign-noise population for the
  false-alarm-rate study;
* :class:`ExperimentSpec` — a full sweep grid (case studies × backends ×
  algorithms) plus the shared synthesis/FAR settings, the input of
  :func:`repro.api.runner.run_experiments`.

Every config round-trips losslessly through ``to_dict()``/``from_dict()``
(and ``to_json()``/``from_json()`` for :class:`ExperimentSpec`), so sweeps
can be stored in version control, shipped to worker processes, and rebuilt
anywhere.  All component references are *names* resolved through the shared
registries in :mod:`repro.registry`, which keeps the configs plain data and
lets downstream users sweep their own registered components.
"""

from __future__ import annotations

import dataclasses
import inspect
import json
from dataclasses import dataclass, field

import numpy as np

from repro.registry import (
    ATTACK_TEMPLATES,
    BACKENDS,
    CASE_STUDIES,
    DETECTORS,
    ENGINES,
    NOISE_MODELS,
    SYNTHESIZERS,
)
from repro.utils.validation import ValidationError


def _constructor_params(factory) -> tuple[set[str], bool]:
    """Parameter names accepted by ``factory`` and whether it takes ``**kwargs``."""
    if dataclasses.is_dataclass(factory):
        return {f.name for f in dataclasses.fields(factory)}, False
    signature = inspect.signature(factory)
    accepts_var = any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in signature.parameters.values()
    )
    names = {
        name
        for name, p in signature.parameters.items()
        if p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
    }
    return names, accepts_var


def _filtered_kwargs(factory, kwargs: dict) -> dict:
    """Drop kwargs the factory does not accept (synthesizers vary in knobs)."""
    supported, accepts_var = _constructor_params(factory)
    if accepts_var:
        return dict(kwargs)
    return {key: value for key, value in kwargs.items() if key in supported}


def _name_tuple(label: str, values) -> tuple[str, ...]:
    if isinstance(values, str):
        values = (values,)
    result = tuple(str(value) for value in values)
    if not result:
        raise ValidationError(f"{label} must name at least one entry")
    return result


@dataclass
class RelaxConfig:
    """Declarative description of the threshold-relaxation pipeline stage.

    When attached to :class:`SynthesisConfig.relax`, every synthesized
    threshold vector is post-processed by
    :class:`~repro.core.relaxation.ThresholdRelaxer` through the pipeline's
    shared :class:`~repro.core.session.SynthesisSession` before FAR
    evaluation and probe deployment: thresholds are raised wherever the
    solver certifies that no stealthy successful attack appears, which
    lowers the false-alarm rate without giving up the formal guarantee.

    ``floor`` is the explicit residual-risk knob: set thresholds below it
    are lifted *without* certification (recorded in
    ``RelaxationResult.floored_instants``), which is what un-saturates the
    FAR of un-floored synthesis on plants like the VSC whose terminal
    threshold is provably pinned at ~0.  The paper's §IV FAR numbers accept
    exactly this trade.

    Parameters
    ----------
    floor:
        Optional uncertified lower bound on set thresholds (``None`` keeps
        relaxation fully solver-certified).
    preserve_monotonicity:
        Never raise a threshold above its predecessor (default True), so
        monotonically decreasing vectors stay monotone.
    raise_cap:
        Optional absolute ceiling on raised values.
    verify_input:
        Re-verify that each input vector is safe before relaxing it
        (default False — synthesis output is already certified when it
        converged).
    """

    floor: float | None = None
    preserve_monotonicity: bool = True
    raise_cap: float | None = None
    verify_input: bool = False

    def __post_init__(self) -> None:
        if self.floor is not None:
            self.floor = float(self.floor)
            if self.floor < 0:
                raise ValidationError("floor must be non-negative")
        if self.raise_cap is not None:
            self.raise_cap = float(self.raise_cap)
        if (
            self.floor is not None
            and self.raise_cap is not None
            and self.floor > self.raise_cap
        ):
            raise ValidationError(
                f"floor ({self.floor}) must not exceed raise_cap ({self.raise_cap}): "
                "the floor would silently lift thresholds above the declared ceiling"
            )
        self.preserve_monotonicity = bool(self.preserve_monotonicity)
        self.verify_input = bool(self.verify_input)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data representation (JSON-compatible)."""
        return {
            "floor": self.floor,
            "preserve_monotonicity": self.preserve_monotonicity,
            "raise_cap": self.raise_cap,
            "verify_input": self.verify_input,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RelaxConfig":
        """Rebuild from :meth:`to_dict` output (unknown keys rejected)."""
        return cls(**_checked_fields(cls, data))


@dataclass
class SynthesisConfig:
    """Declarative description of one threshold-synthesis run.

    Parameters
    ----------
    algorithms:
        Synthesizer names from :data:`repro.registry.SYNTHESIZERS`
        (built-ins: ``"pivot"``, ``"stepwise"``, ``"static"``).
    backend:
        Backend name from :data:`repro.registry.BACKENDS`.
    max_rounds:
        Safety cap on Algorithm 1 calls per synthesizer.
    min_threshold:
        Floor below which thresholds are never placed (ignored by
        synthesizers that do not take it, e.g. the static baseline).
    time_budget_per_call:
        Optional per-call wall-clock budget in seconds.
    backend_options:
        Constructor kwargs for the backend (e.g. ``{"margin_mode": "none"}``).
    algorithm_options:
        Per-algorithm constructor overrides, keyed by algorithm name
        (e.g. ``{"pivot": {"pivot_rule": "first-violation"}}``).
    relax:
        Optional :class:`RelaxConfig` (or its ``to_dict`` form): when set,
        every synthesized threshold is relaxed through the shared synthesis
        session before FAR evaluation, and reports carry both the raw and
        the relaxed vector.
    """

    algorithms: tuple[str, ...] = ("pivot", "stepwise", "static")
    backend: str = "lp"
    max_rounds: int = 500
    min_threshold: float = 0.0
    time_budget_per_call: float | None = None
    backend_options: dict = field(default_factory=dict)
    algorithm_options: dict = field(default_factory=dict)
    relax: RelaxConfig | None = None

    def __post_init__(self) -> None:
        self.algorithms = _name_tuple("algorithms", self.algorithms)
        unknown = set(self.algorithms) - set(SYNTHESIZERS.available())
        if unknown:
            raise ValidationError(
                f"unknown algorithms {sorted(unknown)}; "
                f"available: {', '.join(SYNTHESIZERS.available())}"
            )
        self.backend = str(self.backend)
        if self.backend not in BACKENDS:
            raise ValidationError(
                f"unknown backend {self.backend!r}; "
                f"available: {', '.join(BACKENDS.available())}"
            )
        unknown_options = set(self.algorithm_options) - set(self.algorithms)
        if unknown_options:
            raise ValidationError(
                f"algorithm_options given for algorithms not in the run: "
                f"{sorted(unknown_options)}"
            )
        self.max_rounds = int(self.max_rounds)
        self.min_threshold = float(self.min_threshold)
        if isinstance(self.relax, dict):
            self.relax = RelaxConfig.from_dict(self.relax)

    # ------------------------------------------------------------------
    def build_backend(self):
        """Instantiate the configured backend."""
        return BACKENDS.create(self.backend, **self.backend_options)

    def build_relaxer(self, backend=None):
        """Instantiate the :class:`~repro.core.relaxation.ThresholdRelaxer`.

        ``backend`` (an instance) overrides the configured backend name so
        relaxation shares the pipeline's solver; returns ``None`` when no
        ``relax`` stage is configured.
        """
        if self.relax is None:
            return None
        from repro.core.relaxation import ThresholdRelaxer

        return ThresholdRelaxer(
            backend=backend if backend is not None else self.backend,
            time_budget_per_call=self.time_budget_per_call,
            preserve_monotonicity=self.relax.preserve_monotonicity,
            raise_cap=self.relax.raise_cap,
            floor=self.relax.floor,
        )

    def build_synthesizer(self, name: str, backend=None):
        """Instantiate the synthesizer registered under ``name``.

        ``backend`` (an instance) overrides the configured backend name so
        one solver instance can be shared across algorithms.  Only the
        *shared* config knobs are dropped when a synthesizer does not accept
        them (the static baseline has no ``min_threshold``, for instance);
        explicit ``algorithm_options`` entries are passed through unfiltered
        so a misspelled option fails loudly instead of being ignored.
        """
        factory = SYNTHESIZERS.get(name)
        shared = {
            "backend": backend if backend is not None else self.backend,
            "max_rounds": self.max_rounds,
            "min_threshold": self.min_threshold,
            "time_budget_per_call": self.time_budget_per_call,
        }
        kwargs = _filtered_kwargs(factory, shared)
        kwargs.update(self.algorithm_options.get(name, {}))
        return factory(**kwargs)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data representation (JSON-compatible)."""
        return {
            "algorithms": list(self.algorithms),
            "backend": self.backend,
            "max_rounds": self.max_rounds,
            "min_threshold": self.min_threshold,
            "time_budget_per_call": self.time_budget_per_call,
            "backend_options": dict(self.backend_options),
            "algorithm_options": {k: dict(v) for k, v in self.algorithm_options.items()},
            "relax": None if self.relax is None else self.relax.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SynthesisConfig":
        """Rebuild from :meth:`to_dict` output (unknown keys rejected)."""
        return cls(**_checked_fields(cls, data))


@dataclass
class FARConfig:
    """Declarative description of one false-alarm-rate study.

    Parameters
    ----------
    count:
        Number of benign noise vectors to draw (0 disables the study).
    seed:
        RNG seed for the population.
    noise_model:
        Optional noise-model name from :data:`repro.registry.NOISE_MODELS`;
        ``None`` uses the evaluator's default (bounded uniform noise at
        ``noise_scale`` sigma of the plant's measurement noise).
    noise_options:
        Constructor kwargs for the named noise model (e.g. ``{"bounds":
        [0.01, 0.02]}``).
    noise_scale:
        Sigma multiple for the default noise model (ignored when
        ``noise_model`` is given).
    include_process_noise / filter_pfc / filter_mdc:
        Forwarded to :class:`~repro.core.far.FalseAlarmEvaluator`.
    initial_state_spread:
        Optional per-state half-widths of the initial-state box (list of
        floats, one per plant state).
    """

    count: int = 200
    seed: int | None = 0
    noise_model: str | None = None
    noise_options: dict = field(default_factory=dict)
    noise_scale: float = 1.0
    include_process_noise: bool = False
    filter_pfc: bool = True
    filter_mdc: bool = True
    initial_state_spread: list[float] | None = None

    def __post_init__(self) -> None:
        self.count = int(self.count)
        if self.count < 0:
            raise ValidationError("count must be non-negative")
        if self.noise_model is not None:
            self.noise_model = str(self.noise_model)
            if self.noise_model not in NOISE_MODELS:
                raise ValidationError(
                    f"unknown noise model {self.noise_model!r}; "
                    f"available: {', '.join(NOISE_MODELS.available())}"
                )
        if self.initial_state_spread is not None:
            self.initial_state_spread = [
                float(v) for v in np.asarray(self.initial_state_spread, dtype=float).reshape(-1)
            ]

    # ------------------------------------------------------------------
    def build_evaluator(self, problem, noise_model=None):
        """Construct the :class:`~repro.core.far.FalseAlarmEvaluator` for ``problem``.

        ``noise_model`` (an instance) overrides the declarative settings; it
        is the escape hatch the :class:`~repro.core.pipeline.SynthesisPipeline`
        compat shim uses for caller-supplied model objects.
        """
        from repro.core.far import FalseAlarmEvaluator

        noise = noise_model
        if noise is None and self.noise_model is not None:
            noise = NOISE_MODELS.create(self.noise_model, **self.noise_options)
        if noise is None and self.noise_scale != 1.0:
            noise = FalseAlarmEvaluator.default_noise_model(problem, scale=self.noise_scale)
        spread = None
        if self.initial_state_spread is not None:
            spread = np.asarray(self.initial_state_spread, dtype=float)
        return FalseAlarmEvaluator(
            problem,
            noise_model=noise,
            count=self.count,
            seed=self.seed,
            include_process_noise=self.include_process_noise,
            filter_pfc=self.filter_pfc,
            filter_mdc=self.filter_mdc,
            initial_state_spread=spread,
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data representation (JSON-compatible)."""
        return {
            "count": self.count,
            "seed": self.seed,
            "noise_model": self.noise_model,
            "noise_options": dict(self.noise_options),
            "noise_scale": self.noise_scale,
            "include_process_noise": self.include_process_noise,
            "filter_pfc": self.filter_pfc,
            "filter_mdc": self.filter_mdc,
            "initial_state_spread": (
                None if self.initial_state_spread is None else list(self.initial_state_spread)
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FARConfig":
        """Rebuild from :meth:`to_dict` output (unknown keys rejected)."""
        return cls(**_checked_fields(cls, data))


_ATTACK_SCHEDULE_KEYS = {"template", "options", "instances", "fraction", "start", "label"}


def _normalize_detector_specs(detectors: dict) -> dict:
    """Validate ``label -> {"name", "options"}`` detector entries against the registry.

    Shared by :class:`RuntimeConfig` and :class:`ServiceConfig`.  A bare name
    string is accepted as shorthand for ``{"name": name}``; unknown entry
    keys and unregistered detector names are rejected.
    """
    normalized = {}
    for label, spec in detectors.items():
        if isinstance(spec, str):
            spec = {"name": spec}
        unknown = set(spec) - {"name", "options"}
        if unknown:
            raise ValidationError(
                f"unknown detector entry keys {sorted(unknown)} for {label!r}; "
                "expected 'name' and optional 'options'"
            )
        if "name" not in spec:
            raise ValidationError(
                f"detector entry {label!r} needs a 'name' (one of: "
                f"{', '.join(DETECTORS.available())})"
            )
        name = str(spec["name"])
        if name not in DETECTORS:
            raise ValidationError(
                f"unknown detector {name!r}; "
                f"available: {', '.join(DETECTORS.available())}"
            )
        normalized[str(label)] = {"name": name, "options": dict(spec.get("options", {}))}
    return normalized


@dataclass
class RuntimeConfig:
    """Declarative description of one fleet-monitoring run (``run_fleet``).

    Parameters
    ----------
    n_instances:
        Fleet size ``N``.
    horizon:
        Sampling instances to step; ``None`` uses the problem's horizon.
    case_study / case_study_options:
        Registry name (and builder kwargs) of the problem to deploy on;
        optional when a problem is passed to ``run_fleet`` directly.
    synthesis:
        Optional :class:`SynthesisConfig`; each configured algorithm's
        synthesized threshold is deployed as an online residue detector
        labelled by the algorithm name.
    static_thresholds:
        Extra static residue detectors, ``label -> threshold value`` (in the
        problem's residue units).
    detectors:
        Extra registry-named detectors, ``label -> {"name": ..., "options":
        {...}}`` (a bare name string is also accepted).  Chi-square entries
        may omit ``innovation_cov`` (derived from the plant's Kalman design)
        and may give ``false_alarm_probability`` instead of a threshold.
    include_mdc:
        Deploy the plant's existing monitors (``mdc``) as an online monitor
        labelled ``"mdc"``.
    noise_model / noise_options / noise_scale:
        Benign measurement-noise envelope per instance; ``None`` uses the
        FAR study's default (bounded uniform at ``noise_scale`` sigma).
    include_process_noise:
        Draw per-instance process noise from the plant's ``Q_w``.
    initial_state_spread:
        Per-state half-widths of the initial-state box (as in
        :class:`FARConfig`).
    attacks:
        Attack schedule entries: ``{"template": name, "options": {...},
        "start": k, "instances": [...] | "fraction": f, "label": ...}``.
    seed:
        Seed of the per-instance noise streams and subset draws.
    events_path:
        When set, alarm events are appended to this JSONL file.
    record_traces:
        Keep the full fleet trajectories on the report metadata (memory
        scales with ``N * horizon``; off by default).
    engine / engine_options:
        Registry name (and constructor kwargs) of the fleet execution
        engine: ``"legacy"`` (the per-step reference loop) or ``"fused"``
        (the block-GEMM kernel of :mod:`repro.runtime.kernel`, taking
        ``dtype`` and ``workers``).
    """

    n_instances: int = 100
    horizon: int | None = None
    case_study: str | None = None
    case_study_options: dict = field(default_factory=dict)
    synthesis: SynthesisConfig | None = None
    static_thresholds: dict = field(default_factory=dict)
    detectors: dict = field(default_factory=dict)
    include_mdc: bool = True
    noise_model: str | None = None
    noise_options: dict = field(default_factory=dict)
    noise_scale: float = 1.0
    include_process_noise: bool = False
    initial_state_spread: list[float] | None = None
    attacks: list = field(default_factory=list)
    seed: int | None = 0
    events_path: str | None = None
    record_traces: bool = False
    engine: str = "legacy"
    engine_options: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.n_instances = int(self.n_instances)
        if self.n_instances <= 0:
            raise ValidationError("n_instances must be positive")
        if self.horizon is not None:
            self.horizon = int(self.horizon)
            if self.horizon <= 0:
                raise ValidationError("horizon must be positive")
        if self.case_study is not None:
            self.case_study = str(self.case_study)
            if self.case_study not in CASE_STUDIES:
                raise ValidationError(
                    f"unknown case study {self.case_study!r}; "
                    f"available: {', '.join(CASE_STUDIES.available())}"
                )
        if isinstance(self.synthesis, dict):
            self.synthesis = SynthesisConfig.from_dict(self.synthesis)
        self.static_thresholds = {
            str(label): float(value) for label, value in self.static_thresholds.items()
        }
        self.detectors = _normalize_detector_specs(self.detectors)
        if self.noise_model is not None:
            self.noise_model = str(self.noise_model)
            if self.noise_model not in NOISE_MODELS:
                raise ValidationError(
                    f"unknown noise model {self.noise_model!r}; "
                    f"available: {', '.join(NOISE_MODELS.available())}"
                )
        if self.initial_state_spread is not None:
            self.initial_state_spread = [
                float(v) for v in np.asarray(self.initial_state_spread, dtype=float).reshape(-1)
            ]
        attacks = []
        for entry in self.attacks:
            entry = dict(entry)
            unknown = set(entry) - _ATTACK_SCHEDULE_KEYS
            if unknown:
                raise ValidationError(
                    f"unknown attack schedule keys {sorted(unknown)}; "
                    f"allowed: {sorted(_ATTACK_SCHEDULE_KEYS)}"
                )
            template = str(entry.get("template", ""))
            if template not in ATTACK_TEMPLATES:
                raise ValidationError(
                    f"unknown attack template {template!r}; "
                    f"available: {', '.join(ATTACK_TEMPLATES.available())}"
                )
            entry["template"] = template
            if "instances" in entry and "fraction" in entry:
                raise ValidationError(
                    "an attack schedule entry takes either 'instances' or 'fraction', not both"
                )
            if "instances" in entry:
                entry["instances"] = [int(i) for i in entry["instances"]]
            attacks.append(entry)
        self.attacks = attacks
        self.noise_scale = float(self.noise_scale)
        self.engine = str(self.engine)
        if self.engine not in ENGINES:
            raise ValidationError(
                f"unknown engine {self.engine!r}; "
                f"available: {', '.join(ENGINES.available())}"
            )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data representation (JSON-compatible)."""
        return {
            "n_instances": self.n_instances,
            "horizon": self.horizon,
            "case_study": self.case_study,
            "case_study_options": dict(self.case_study_options),
            "synthesis": None if self.synthesis is None else self.synthesis.to_dict(),
            "static_thresholds": dict(self.static_thresholds),
            "detectors": {
                label: {"name": spec["name"], "options": dict(spec["options"])}
                for label, spec in self.detectors.items()
            },
            "include_mdc": self.include_mdc,
            "noise_model": self.noise_model,
            "noise_options": dict(self.noise_options),
            "noise_scale": self.noise_scale,
            "include_process_noise": self.include_process_noise,
            "initial_state_spread": (
                None if self.initial_state_spread is None else list(self.initial_state_spread)
            ),
            "attacks": [dict(entry) for entry in self.attacks],
            "seed": self.seed,
            "events_path": self.events_path,
            "record_traces": self.record_traces,
            "engine": self.engine,
            "engine_options": dict(self.engine_options),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RuntimeConfig":
        """Rebuild from :meth:`to_dict` output (unknown keys rejected)."""
        return cls(**_checked_fields(cls, data))

    def to_json(self, indent: int | None = 2) -> str:
        """JSON string form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RuntimeConfig":
        """Rebuild from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


_RING_OVERFLOW_POLICIES = ("drop-oldest", "drop-newest", "error")
_RESIDUE_SOURCES = ("observer", "ingest")
_SINK_POLICIES = ("block", "drop-oldest", "drop-newest")


@dataclass
class ServiceConfig:
    """Declarative description of one always-on monitoring service (``run_service``).

    The bank-defining half (``case_study``, ``synthesis``,
    ``static_thresholds``, ``detectors``, ``include_mdc``) matches
    :class:`RuntimeConfig` field for field and flows through the shared
    :func:`~repro.runtime.engine.build_detector_bank`; the rest configures
    the serving machinery of :class:`~repro.serve.service.MonitorService`.

    Parameters
    ----------
    case_study / case_study_options:
        Registry name (and builder kwargs) of the problem to serve; optional
        when a problem is passed to ``run_service`` directly.
    synthesis:
        Optional :class:`SynthesisConfig`; each algorithm's synthesized
        threshold is deployed under the algorithm's name.
    static_thresholds:
        Extra static residue detectors, ``label -> threshold value``.
    detectors:
        Extra registry-named detectors, ``label -> {"name": ..., "options":
        {...}}`` (a bare name string is also accepted).
    include_mdc:
        Deploy the plant's existing monitors as ``"mdc"``.
    residue_source:
        ``"observer"`` (compute residues from ingested measurements) or
        ``"ingest"`` (producer supplies residues).
    ring_capacity:
        Pending samples each instance's ring buffer holds.
    overflow:
        Ring-buffer overflow policy: ``"drop-oldest"``, ``"drop-newest"`` or
        ``"error"``.
    auto_drain:
        Drain complete rounds from inside ``ingest`` (default True).
    log_path:
        When set, the replayable service event stream is appended to this
        JSONL file; ``None`` keeps it in memory only.
    flush_every:
        Log flush cadence in events (0 defers to close).
    sink_capacity:
        When set, every sink passed to ``run_service`` is wrapped in a
        :class:`~repro.serve.backpressure.BufferedSink` of this capacity.
    sink_policy:
        The wrapped sinks' overflow policy: ``"block"``, ``"drop-oldest"``
        or ``"drop-newest"``.
    engine / engine_options:
        Registry name (and constructor kwargs) of the round-evaluation
        engine: ``"legacy"`` (per-core loop) or ``"fused"`` (vectorized
        :class:`~repro.runtime.kernel.serve.FusedServicePlan` rounds).
    """

    case_study: str | None = None
    case_study_options: dict = field(default_factory=dict)
    synthesis: SynthesisConfig | None = None
    static_thresholds: dict = field(default_factory=dict)
    detectors: dict = field(default_factory=dict)
    include_mdc: bool = True
    residue_source: str = "observer"
    ring_capacity: int = 64
    overflow: str = "drop-oldest"
    auto_drain: bool = True
    log_path: str | None = None
    flush_every: int = 1
    sink_capacity: int | None = None
    sink_policy: str = "block"
    engine: str = "legacy"
    engine_options: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.case_study is not None:
            self.case_study = str(self.case_study)
            if self.case_study not in CASE_STUDIES:
                raise ValidationError(
                    f"unknown case study {self.case_study!r}; "
                    f"available: {', '.join(CASE_STUDIES.available())}"
                )
        if isinstance(self.synthesis, dict):
            self.synthesis = SynthesisConfig.from_dict(self.synthesis)
        self.static_thresholds = {
            str(label): float(value) for label, value in self.static_thresholds.items()
        }
        self.detectors = _normalize_detector_specs(self.detectors)
        self.residue_source = str(self.residue_source)
        if self.residue_source not in _RESIDUE_SOURCES:
            raise ValidationError(
                f"unknown residue_source {self.residue_source!r}; "
                f"expected one of {_RESIDUE_SOURCES}"
            )
        self.ring_capacity = int(self.ring_capacity)
        if self.ring_capacity <= 0:
            raise ValidationError("ring_capacity must be positive")
        self.overflow = str(self.overflow)
        if self.overflow not in _RING_OVERFLOW_POLICIES:
            raise ValidationError(
                f"unknown overflow policy {self.overflow!r}; "
                f"expected one of {_RING_OVERFLOW_POLICIES}"
            )
        self.auto_drain = bool(self.auto_drain)
        self.flush_every = int(self.flush_every)
        if self.flush_every < 0:
            raise ValidationError("flush_every must be non-negative")
        if self.sink_capacity is not None:
            self.sink_capacity = int(self.sink_capacity)
            if self.sink_capacity <= 0:
                raise ValidationError("sink_capacity must be positive")
        self.sink_policy = str(self.sink_policy)
        if self.sink_policy not in _SINK_POLICIES:
            raise ValidationError(
                f"unknown sink_policy {self.sink_policy!r}; "
                f"expected one of {_SINK_POLICIES}"
            )
        self.engine = str(self.engine)
        if self.engine not in ENGINES:
            raise ValidationError(
                f"unknown engine {self.engine!r}; "
                f"available: {', '.join(ENGINES.available())}"
            )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data representation (JSON-compatible)."""
        return {
            "case_study": self.case_study,
            "case_study_options": dict(self.case_study_options),
            "synthesis": None if self.synthesis is None else self.synthesis.to_dict(),
            "static_thresholds": dict(self.static_thresholds),
            "detectors": {
                label: {"name": spec["name"], "options": dict(spec["options"])}
                for label, spec in self.detectors.items()
            },
            "include_mdc": self.include_mdc,
            "residue_source": self.residue_source,
            "ring_capacity": self.ring_capacity,
            "overflow": self.overflow,
            "auto_drain": self.auto_drain,
            "log_path": self.log_path,
            "flush_every": self.flush_every,
            "sink_capacity": self.sink_capacity,
            "sink_policy": self.sink_policy,
            "engine": self.engine,
            "engine_options": dict(self.engine_options),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ServiceConfig":
        """Rebuild from :meth:`to_dict` output (unknown keys rejected)."""
        return cls(**_checked_fields(cls, data))

    def to_json(self, indent: int | None = 2) -> str:
        """JSON string form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ServiceConfig":
        """Rebuild from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


@dataclass
class ExperimentUnit:
    """One cell of an expanded :class:`ExperimentSpec` grid.

    ``probe`` is an optional online detection-latency probe description (set
    by :class:`repro.explore.space.SearchSpace`): after synthesis, each
    algorithm's threshold is deployed on a small attacked fleet and the
    resulting detection rate / latency land in the row's ``metrics``.  See
    :func:`repro.api.runner._run_probe` for the schema.
    """

    case_study: str
    backend: str
    algorithm: str
    case_study_options: dict = field(default_factory=dict)
    max_rounds: int = 500
    min_threshold: float = 0.0
    relax: RelaxConfig | None = None
    far: FARConfig | None = None
    probe: dict | None = None

    def __post_init__(self) -> None:
        if isinstance(self.relax, dict):
            self.relax = RelaxConfig.from_dict(self.relax)

    @property
    def label(self) -> str:
        """Stable ``case/backend/algorithm`` identifier for logs and sorting."""
        return f"{self.case_study}/{self.backend}/{self.algorithm}"

    def synthesis_config(self) -> SynthesisConfig:
        """The single-algorithm :class:`SynthesisConfig` this unit executes."""
        return SynthesisConfig(
            algorithms=(self.algorithm,),
            backend=self.backend,
            max_rounds=self.max_rounds,
            min_threshold=self.min_threshold,
            relax=self.relax,
        )

    def to_dict(self) -> dict:
        """Plain-data representation (used as the multiprocessing payload).

        This payload is also the unit's content address: its synthesis-half
        fields and evaluation-half fields are hashed separately by
        :func:`repro.explore.store.split_unit_keys`, so any new field must be
        classified there as changing the synthesis or only the evaluation.
        """
        return {
            "case_study": self.case_study,
            "backend": self.backend,
            "algorithm": self.algorithm,
            "case_study_options": dict(self.case_study_options),
            "max_rounds": self.max_rounds,
            "min_threshold": self.min_threshold,
            "relax": None if self.relax is None else self.relax.to_dict(),
            "far": None if self.far is None else self.far.to_dict(),
            "probe": None if self.probe is None else dict(self.probe),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentUnit":
        """Rebuild from :meth:`to_dict` output."""
        data = _checked_fields(cls, data)
        far = data.get("far")
        if isinstance(far, dict):
            data["far"] = FARConfig.from_dict(far)
        return cls(**data)


@dataclass
class ExperimentSpec:
    """A declarative sweep over case studies × backends × algorithms.

    Parameters
    ----------
    name:
        Human-readable experiment name (carried into the result table).
    case_studies / backends / algorithms:
        The three grid axes, as registry names.
    case_study_options:
        Per-case-study builder kwargs, keyed by case-study name
        (e.g. ``{"dcmotor": {"horizon": 10}}``).
    max_rounds / min_threshold:
        Shared synthesis knobs applied to every grid cell.
    far:
        Optional :class:`FARConfig` evaluated per cell; ``None`` skips FAR.
    """

    name: str = "experiment"
    case_studies: tuple[str, ...] = ("dcmotor",)
    backends: tuple[str, ...] = ("lp",)
    algorithms: tuple[str, ...] = ("pivot", "stepwise", "static")
    case_study_options: dict = field(default_factory=dict)
    max_rounds: int = 500
    min_threshold: float = 0.0
    far: FARConfig | None = None

    def __post_init__(self) -> None:
        self.name = str(self.name)
        self.case_studies = _name_tuple("case_studies", self.case_studies)
        self.backends = _name_tuple("backends", self.backends)
        self.algorithms = _name_tuple("algorithms", self.algorithms)
        for label, names, registry in (
            ("case study", self.case_studies, CASE_STUDIES),
            ("backend", self.backends, BACKENDS),
            ("algorithm", self.algorithms, SYNTHESIZERS),
        ):
            unknown = set(names) - set(registry.available())
            if unknown:
                raise ValidationError(
                    f"unknown {label} names {sorted(unknown)}; "
                    f"available: {', '.join(registry.available())}"
                )
        unknown_options = set(self.case_study_options) - set(self.case_studies)
        if unknown_options:
            raise ValidationError(
                f"case_study_options given for case studies not in the sweep: "
                f"{sorted(unknown_options)}"
            )
        if isinstance(self.far, dict):
            self.far = FARConfig.from_dict(self.far)
        self.max_rounds = int(self.max_rounds)
        self.min_threshold = float(self.min_threshold)

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of grid cells the spec expands to."""
        return len(self.case_studies) * len(self.backends) * len(self.algorithms)

    def expand(self) -> list[ExperimentUnit]:
        """The full grid as :class:`ExperimentUnit` cells, in axis order."""
        units = []
        for case in self.case_studies:
            options = dict(self.case_study_options.get(case, {}))
            for backend in self.backends:
                for algorithm in self.algorithms:
                    units.append(
                        ExperimentUnit(
                            case_study=case,
                            backend=backend,
                            algorithm=algorithm,
                            case_study_options=options,
                            max_rounds=self.max_rounds,
                            min_threshold=self.min_threshold,
                            far=self.far,
                        )
                    )
        return units

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data representation (JSON-compatible)."""
        return {
            "name": self.name,
            "case_studies": list(self.case_studies),
            "backends": list(self.backends),
            "algorithms": list(self.algorithms),
            "case_study_options": {k: dict(v) for k, v in self.case_study_options.items()},
            "max_rounds": self.max_rounds,
            "min_threshold": self.min_threshold,
            "far": None if self.far is None else self.far.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentSpec":
        """Rebuild from :meth:`to_dict` output (unknown keys rejected)."""
        return cls(**_checked_fields(cls, data))

    def to_json(self, indent: int | None = 2) -> str:
        """JSON string form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Rebuild from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


def _checked_fields(cls, data: dict) -> dict:
    """Validate that ``data`` only holds fields of ``cls`` (typo guard)."""
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ValidationError(
            f"unknown {cls.__name__} fields {sorted(unknown)}; known: {sorted(known)}"
        )
    return dict(data)
