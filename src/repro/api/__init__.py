"""Experiment API v2: declarative configs, config-driven execution, batch sweeps.

This package is the recommended entry point for running the paper's workflow
at any scale:

* :class:`~repro.api.config.SynthesisConfig` / :class:`~repro.api.config.FARConfig`
  — JSON-round-trippable descriptions of one synthesis run and one FAR study;
* :func:`~repro.api.execute.run_pipeline` — execute the full workflow
  (vulnerability check → threshold synthesis → FAR) on one problem;
* :class:`~repro.api.config.ExperimentSpec` +
  :func:`~repro.api.runner.run_experiments` — sweep whole grids of
  case studies × backends × algorithms, serially or with multiprocessing
  fan-out, into a sorted :class:`~repro.api.runner.ExperimentResult` table;
* :class:`~repro.api.config.RuntimeConfig` +
  :func:`~repro.runtime.engine.run_fleet` — deploy the synthesized detectors
  online on a vectorized fleet of monitored plant instances under scheduled
  attacks (see :mod:`repro.runtime`);
* :class:`~repro.api.config.ServiceConfig` +
  :func:`~repro.serve.engine.run_service` — run the detectors as an
  always-on streaming service with dynamic membership, threshold hot-swap
  and a replayable event log (see :mod:`repro.serve`);
* :class:`~repro.explore.engine.ExploreConfig` +
  :func:`~repro.explore.engine.run_exploration` — sweep whole design spaces
  (thresholds × noise × horizons × ...) into Pareto fronts, backed by a
  persistent content-addressed result store (see :mod:`repro.explore`).

Every component name is resolved through :mod:`repro.registry`, so anything a
downstream user registers there is sweepable here with no further plumbing.
"""

from repro.api.config import (
    ExperimentSpec,
    ExperimentUnit,
    FARConfig,
    RelaxConfig,
    RuntimeConfig,
    ServiceConfig,
    SynthesisConfig,
)
from repro.api.execute import PipelineReport, run_pipeline, synthesis_record
from repro.api.runner import (
    BatchRunner,
    ExperimentResult,
    ExperimentRow,
    default_workers,
    run_experiments,
)
from repro.runtime.engine import run_fleet
from repro.serve.engine import run_service

# Imported last: repro.explore builds on the config/execute/runner modules
# above (it may only import those submodules, never this package).
from repro.explore.engine import ExploreConfig, run_exploration

__all__ = [
    "SynthesisConfig",
    "FARConfig",
    "RelaxConfig",
    "ExperimentSpec",
    "ExperimentUnit",
    "RuntimeConfig",
    "ServiceConfig",
    "ExploreConfig",
    "PipelineReport",
    "run_pipeline",
    "synthesis_record",
    "run_fleet",
    "run_service",
    "run_exploration",
    "BatchRunner",
    "ExperimentResult",
    "ExperimentRow",
    "default_workers",
    "run_experiments",
]
