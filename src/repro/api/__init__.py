"""Experiment API v2: declarative configs, config-driven execution, batch sweeps.

This package is the recommended entry point for running the paper's workflow
at any scale:

* :class:`~repro.api.config.SynthesisConfig` / :class:`~repro.api.config.FARConfig`
  — JSON-round-trippable descriptions of one synthesis run and one FAR study;
* :func:`~repro.api.execute.run_pipeline` — execute the full workflow
  (vulnerability check → threshold synthesis → FAR) on one problem;
* :class:`~repro.api.config.ExperimentSpec` +
  :func:`~repro.api.runner.run_experiments` — sweep whole grids of
  case studies × backends × algorithms, serially or with multiprocessing
  fan-out, into a sorted :class:`~repro.api.runner.ExperimentResult` table;
* :class:`~repro.api.config.RuntimeConfig` +
  :func:`~repro.runtime.engine.run_fleet` — deploy the synthesized detectors
  online on a vectorized fleet of monitored plant instances under scheduled
  attacks (see :mod:`repro.runtime`).

Every component name is resolved through :mod:`repro.registry`, so anything a
downstream user registers there is sweepable here with no further plumbing.
"""

from repro.api.config import (
    ExperimentSpec,
    ExperimentUnit,
    FARConfig,
    RuntimeConfig,
    SynthesisConfig,
)
from repro.api.execute import PipelineReport, run_pipeline
from repro.api.runner import BatchRunner, ExperimentResult, ExperimentRow, run_experiments
from repro.runtime.engine import run_fleet

__all__ = [
    "SynthesisConfig",
    "FARConfig",
    "ExperimentSpec",
    "ExperimentUnit",
    "RuntimeConfig",
    "PipelineReport",
    "run_pipeline",
    "run_fleet",
    "BatchRunner",
    "ExperimentResult",
    "ExperimentRow",
    "run_experiments",
]
