"""Config-driven execution of the paper's end-to-end workflow.

:func:`run_pipeline` is the canonical implementation of the workflow the
paper evaluates — vulnerability check (Algorithm 1 with no residue
detector), threshold synthesis per algorithm, optional threshold relaxation,
FAR study — driven by the declarative configs in :mod:`repro.api.config`.
The legacy :class:`~repro.core.pipeline.SynthesisPipeline` is a thin adapter
over this function.

One :class:`~repro.core.session.SynthesisSession` is opened per call and
shared by the vulnerability check, every synthesis algorithm and the
relaxation stage, so the horizon unrolling and the static constraint blocks
are built once per ``(problem, backend)`` pair — the batch runner inherits
this per-group sharing because each of its ``(case_study, backend)`` groups
is exactly one ``run_pipeline`` call.

The expensive half of a pipeline run (synthesis + relaxation) and the cheap
half (FAR study, probes) are separable: callers can pass ``presynthesized``
records — previously stored synthesis outcomes — and the call then issues
**zero** solver work, re-running only the evaluation half.  That is how the
content-addressed store reuses one synthesis across every FAR/noise/probe
variation (see :func:`repro.explore.store.split_unit_keys`).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field

from repro.api.config import FARConfig, SynthesisConfig
from repro.core.attack_synthesis import AttackSynthesisResult
from repro.core.far import FalseAlarmStudy
from repro.core.relaxation import RelaxationResult
from repro.core.session import SynthesisSession
from repro.core.synthesis_result import ThresholdSynthesisResult
from repro.obs.metrics import get_registry, timed
from repro.obs.trace import span

#: FAR-study label suffix under which the pre-relaxation vector is evaluated
#: when a ``relax`` stage is configured (``"<algorithm>:raw"``).
RAW_FAR_SUFFIX = ":raw"


@dataclass
class PipelineReport:
    """Aggregated output of one end-to-end pipeline run.

    Attributes
    ----------
    vulnerability:
        Algorithm 1 result with no residue detector: does an attack bypass
        the existing monitors at all?
    synthesis:
        Per-algorithm :class:`~repro.core.synthesis_result.ThresholdSynthesisResult`
        (always the **raw** synthesis outcome, relaxed or not).
    relaxation:
        Per-algorithm :class:`~repro.core.relaxation.RelaxationResult` when a
        ``relax`` stage was configured (empty dict otherwise), carrying the
        relaxed vector alongside the raw one in ``synthesis``.
    far_study:
        FAR comparison over the shared benign population (``None`` when FAR
        evaluation was skipped).  With a ``relax`` stage, each algorithm is
        evaluated twice: the deployed (relaxed) vector under its own name
        and the raw vector under ``"<algorithm>:raw"``.
    """

    vulnerability: AttackSynthesisResult
    synthesis: dict[str, ThresholdSynthesisResult] = field(default_factory=dict)
    relaxation: dict[str, RelaxationResult] = field(default_factory=dict)
    far_study: FalseAlarmStudy | None = None

    @property
    def is_vulnerable(self) -> bool:
        """True when the plant's own monitors can be bypassed."""
        return self.vulnerability.found

    def deployed_threshold(self, name: str):
        """The vector actually deployed for ``name``: relaxed when available.

        Falls back to the raw synthesized vector when no relaxation ran for
        the algorithm; ``None`` when nothing was synthesized at all.
        """
        relaxed = self.relaxation.get(name)
        if relaxed is not None:
            return relaxed.threshold
        result = self.synthesis.get(name)
        return None if result is None else result.threshold

    def summary_rows(self) -> list[dict]:
        """Tabular summary, one row per algorithm, sorted by algorithm name.

        The sort makes JSON exports and printed tables reproducible
        run-to-run regardless of synthesis execution order.  Rows grow
        ``relax_rounds`` / ``relax_certified`` / ``false_alarm_rate_raw``
        columns only when a ``relax`` stage ran, so consumers of un-relaxed
        pipelines see the historical schema unchanged.
        """
        rows = []
        for name in sorted(self.synthesis):
            result = self.synthesis[name]
            row = {
                "algorithm": name,
                "rounds": result.rounds,
                "converged": result.converged,
                "solver_time_s": round(result.total_solver_time, 3),
            }
            if self.far_study is not None and name in self.far_study.rates:
                row["false_alarm_rate"] = self.far_study.rates[name]
            relaxed = self.relaxation.get(name)
            if relaxed is not None:
                row["relax_rounds"] = relaxed.rounds
                row["relax_certified"] = relaxed.certified
                if self.far_study is not None:
                    raw_rate = self.far_study.rates.get(name + RAW_FAR_SUFFIX)
                    if raw_rate is not None:
                        row["false_alarm_rate_raw"] = raw_rate
            rows.append(row)
        return rows


# ----------------------------------------------------------------------
# Lossy JSON payloads for the content-addressed store.
# ----------------------------------------------------------------------
def _threshold_payload(threshold) -> dict | None:
    if threshold is None:
        return None
    return {
        "values": [float(v) for v in threshold.values],
        "norm": threshold.norm,
        "weights": None
        if threshold.weights is None
        else [float(w) for w in threshold.weights],
    }


def _threshold_from_payload(stored: dict | None):
    from repro.detectors.threshold import ThresholdVector

    if stored is None:
        return None
    norm = stored["norm"]
    return ThresholdVector(
        values=stored["values"],
        norm=norm if norm == "inf" else int(norm),
        weights=stored["weights"],
        metadata={"from_store": True},
    )


def _vulnerability_payload(vulnerability: AttackSynthesisResult) -> dict:
    return {
        "status": vulnerability.status.value,
        "verified": vulnerability.verified,
        "elapsed": vulnerability.elapsed,
    }


def _vulnerability_from_payload(payload: dict) -> AttackSynthesisResult:
    from repro.utils.results import SolveStatus

    return AttackSynthesisResult(
        status=SolveStatus(payload["status"]),
        verified=payload["verified"],
        elapsed=payload["elapsed"],
        diagnostics={"from_store": True},
    )


def _synthesis_payload(result: ThresholdSynthesisResult) -> dict:
    return {
        "threshold": _threshold_payload(result.threshold),
        "rounds": result.rounds,
        "converged": result.converged,
        "status": result.status.value,
        "vulnerable_without_detector": result.vulnerable_without_detector,
        "total_solver_time": result.total_solver_time,
        "algorithm": result.algorithm,
    }


def _synthesis_from_payload(entry: dict) -> ThresholdSynthesisResult:
    from repro.utils.results import SolveStatus

    return ThresholdSynthesisResult(
        threshold=_threshold_from_payload(entry["threshold"]),
        rounds=entry["rounds"],
        converged=entry["converged"],
        status=SolveStatus(entry["status"]),
        vulnerable_without_detector=entry["vulnerable_without_detector"],
        total_solver_time=entry["total_solver_time"],
        algorithm=entry["algorithm"],
    )


def _relaxation_payload(result: RelaxationResult | None) -> dict | None:
    if result is None:
        return None
    return {
        "threshold": _threshold_payload(result.threshold),
        "raised_instants": list(result.raised_instants),
        "floored_instants": list(result.floored_instants),
        "rounds": result.rounds,
        "certified": result.certified,
        "total_solver_time": result.total_solver_time,
    }


def _relaxation_from_payload(entry: dict | None) -> RelaxationResult | None:
    if entry is None:
        return None
    return RelaxationResult(
        threshold=_threshold_from_payload(entry["threshold"]),
        raised_instants=list(entry["raised_instants"]),
        floored_instants=list(entry.get("floored_instants", [])),
        rounds=entry["rounds"],
        certified=entry["certified"],
        total_solver_time=entry["total_solver_time"],
    )


def synthesis_record(report: PipelineReport, algorithm: str) -> dict:
    """The reusable synthesis-half outcome of one algorithm, as plain JSON.

    This is what the content-addressed store files under a *synthesis key*
    (:func:`repro.explore.store.synthesis_store_key`): the vulnerability
    verdict, the raw synthesis outcome and the relaxation outcome — exactly
    the solver-dependent half of a pipeline run.  Feed it back through
    ``run_pipeline(..., presynthesized={algorithm: record})`` to re-evaluate
    FAR/probe variations with zero solver calls.
    """
    return {
        "vulnerability": _vulnerability_payload(report.vulnerability),
        "synthesis": _synthesis_payload(report.synthesis[algorithm]),
        "relaxation": _relaxation_payload(report.relaxation.get(algorithm)),
    }


def _report_payload(report: PipelineReport) -> dict:
    """JSON form of a report for the content-addressed store (lossy).

    Persists every scalar outcome plus the synthesized (raw and relaxed)
    threshold vectors; per-round histories, attack witnesses, traces and FAR
    details are dropped — a report served from the store answers "what came
    out", not "how it got there".
    """
    payload = {
        "vulnerability": _vulnerability_payload(report.vulnerability),
        "synthesis": {
            name: _synthesis_payload(result) for name, result in report.synthesis.items()
        },
        "relaxation": {
            name: _relaxation_payload(result) for name, result in report.relaxation.items()
        },
        "far_study": None,
    }
    if report.far_study is not None:
        study = report.far_study
        payload["far_study"] = {
            "rates": dict(study.rates),
            "generated": study.generated,
            "kept": study.kept,
            "discarded_pfc": study.discarded_pfc,
            "discarded_mdc": study.discarded_mdc,
        }
    return payload


def _report_from_payload(payload: dict) -> PipelineReport:
    """Rebuild a (lossy) :class:`PipelineReport` from :func:`_report_payload`."""
    report = PipelineReport(
        vulnerability=_vulnerability_from_payload(payload["vulnerability"])
    )
    for name, entry in payload["synthesis"].items():
        report.synthesis[name] = _synthesis_from_payload(entry)
    for name, entry in payload.get("relaxation", {}).items():
        result = _relaxation_from_payload(entry)
        if result is not None:
            report.relaxation[name] = result
    if payload["far_study"] is not None:
        study = payload["far_study"]
        report.far_study = FalseAlarmStudy(
            rates=dict(study["rates"]),
            generated=study["generated"],
            kept=study["kept"],
            discarded_pfc=study["discarded_pfc"],
            discarded_mdc=study["discarded_mdc"],
            details={"from_store": True},
        )
    return report


def run_pipeline(
    problem,
    synthesis: SynthesisConfig | None = None,
    far: FARConfig | None = None,
    *,
    backend=None,
    far_noise_model=None,
    store=None,
    presynthesized: dict | None = None,
) -> PipelineReport:
    """Run vulnerability check, synthesis, relaxation and FAR study on ``problem``.

    Parameters
    ----------
    problem:
        The :class:`~repro.core.problem.SynthesisProblem` instance.
    synthesis:
        Declarative synthesis settings (defaults to all three algorithms on
        the LP backend).  When ``synthesis.relax`` is set, each synthesized
        vector is relaxed through the shared session before FAR evaluation;
        the report then carries both the raw and the relaxed thresholds.
    far:
        Declarative FAR settings; ``None`` (or ``count=0``) skips the study.
        The study evaluates the *deployed* (relaxed when configured) vectors
        under the algorithm names, plus the raw vectors under
        ``"<algorithm>:raw"`` labels when a relax stage ran.
    backend:
        Optional backend *instance* overriding ``synthesis.backend`` — the
        programmatic escape hatch for pre-configured or caller-supplied
        solvers.
    far_noise_model:
        Optional noise-model *instance* overriding the FAR config's
        declarative noise settings.
    store:
        Optional content-addressed result store (a path or a
        :class:`repro.explore.store.ResultStore`).  The call is keyed by the
        problem's content fingerprint plus both configs; a hit skips all
        solver work and returns a report rebuilt from disk (lossy: per-round
        histories and attack witnesses are not persisted).  The synthesis
        half (fingerprint + synthesis config only) is additionally stored
        under its own key, so a call differing only in FAR settings reuses
        the synthesis and recomputes just the study.  Caller-supplied
        ``backend`` / ``far_noise_model`` *instances* bypass the store —
        their configuration is not content-addressable.
    presynthesized:
        Optional per-algorithm :func:`synthesis_record` payloads.  Covered
        algorithms skip synthesis and relaxation entirely (their outcome is
        rebuilt from the record); when every algorithm is covered no solver
        session is opened at all and only the FAR study / probe half runs.
    """
    if synthesis is None:
        synthesis = SynthesisConfig()
    presynthesized = dict(presynthesized or {})

    store_key = None
    synthesis_key = None
    if store is not None and backend is None and far_noise_model is None:
        from repro.explore.store import as_store, canonical_config_key, problem_fingerprint

        store = as_store(store)
        fingerprint = problem_fingerprint(problem)
        store_key = canonical_config_key(
            {
                "kind": "run_pipeline",
                "problem": fingerprint,
                "synthesis": synthesis.to_dict(),
                "far": None if far is None else far.to_dict(),
            }
        )
        cached = store.get(store_key)
        if cached is not None:
            return _report_from_payload(cached)
        # Full miss: the synthesis half may still be stored (same problem and
        # synthesis config under different FAR settings).  ``peek`` keeps the
        # hit/miss counters honest — this is a partial reuse, not a row hit.
        synthesis_key = canonical_config_key(
            {
                "kind": "run_pipeline.synthesis",
                "problem": fingerprint,
                "synthesis": synthesis.to_dict(),
            }
        )
        stored_synthesis = store.peek(synthesis_key)
        if stored_synthesis is not None:
            for name in synthesis.algorithms:
                entry = stored_synthesis["synthesis"].get(name)
                if name not in presynthesized and entry is not None:
                    presynthesized[name] = {
                        "vulnerability": stored_synthesis["vulnerability"],
                        "synthesis": entry,
                        "relaxation": stored_synthesis.get("relaxation", {}).get(name),
                    }

    fresh = [name for name in synthesis.algorithms if name not in presynthesized]

    stage_seconds = get_registry().histogram(
        "pipeline_stage_seconds",
        help="Wall time per run_pipeline stage (vulnerability, synthesis, far).",
    )

    solver = None
    session = None
    if fresh or backend is not None:
        solver = backend if backend is not None else synthesis.build_backend()
        # One incremental session serves the vulnerability check, every
        # algorithm and the relaxation stage: the encoding's static blocks
        # are built once per call.
        session = SynthesisSession(problem, backend=solver)

    with span("pipeline.vulnerability", problem=problem.name):
        with timed(stage_seconds, stage="vulnerability"):
            if session is not None:
                vulnerability = session.solve(None)
            else:
                # Every algorithm is presynthesized: the stored vulnerability
                # verdict rides along with each record (same problem, same
                # backend).
                first = presynthesized[synthesis.algorithms[0]]
                vulnerability = _vulnerability_from_payload(first["vulnerability"])
    report = PipelineReport(vulnerability=vulnerability)

    relaxer = synthesis.build_relaxer(backend=solver) if fresh else None
    for name in synthesis.algorithms:
        record = presynthesized.get(name)
        if record is not None:
            report.synthesis[name] = _synthesis_from_payload(record["synthesis"])
            relaxed = _relaxation_from_payload(record.get("relaxation"))
            if relaxed is not None:
                report.relaxation[name] = relaxed
            continue
        with span("pipeline.synthesis", problem=problem.name, algorithm=name):
            with timed(stage_seconds, stage="synthesis"):
                synthesizer = synthesis.build_synthesizer(name, backend=solver)
                # Third-party synthesizers registered into SYNTHESIZERS may
                # predate the session protocol; only pass the shared session
                # when accepted.
                if "session" in inspect.signature(synthesizer.synthesize).parameters:
                    result = synthesizer.synthesize(problem, session=session)
                else:
                    result = synthesizer.synthesize(problem)
                report.synthesis[name] = result
                if relaxer is not None and result.threshold is not None:
                    report.relaxation[name] = relaxer.relax(
                        problem,
                        result.threshold,
                        verify_input=synthesis.relax.verify_input,
                        session=session,
                    )

    if far is not None and far.count > 0 and report.synthesis:
        detectors = {}
        for name in report.synthesis:
            deployed = report.deployed_threshold(name)
            if deployed is None:
                continue
            detectors[name] = deployed
            raw = report.synthesis[name].threshold
            if name in report.relaxation and raw is not None:
                detectors[name + RAW_FAR_SUFFIX] = raw
        if detectors:
            with span("pipeline.far", problem=problem.name):
                with timed(stage_seconds, stage="far"):
                    evaluator = far.build_evaluator(problem, noise_model=far_noise_model)
                    report.far_study = evaluator.evaluate(detectors)

    if store_key is not None:
        # No flush: the JSONL log is durable per record and the index
        # sidecar is rebuilt on open; flushing here would rewrite the whole
        # index once per cached call.
        payload = _report_payload(report)
        store.put(store_key, {"kind": "run_pipeline", "problem": problem.name}, payload)
        store.put(
            synthesis_key,
            {"kind": "run_pipeline.synthesis", "problem": problem.name},
            {
                "vulnerability": payload["vulnerability"],
                "synthesis": payload["synthesis"],
                "relaxation": payload["relaxation"],
            },
        )
    return report


__all__ = ["PipelineReport", "run_pipeline", "synthesis_record", "RAW_FAR_SUFFIX"]
