"""Config-driven execution of the paper's end-to-end workflow.

:func:`run_pipeline` is the canonical implementation of the workflow the
paper evaluates — vulnerability check (Algorithm 1 with no residue
detector), threshold synthesis per algorithm, FAR study — driven by the
declarative configs in :mod:`repro.api.config`.  The legacy
:class:`~repro.core.pipeline.SynthesisPipeline` is a thin adapter over this
function.

One :class:`~repro.core.session.SynthesisSession` is opened per call and
shared by the vulnerability check and every synthesis algorithm, so the
horizon unrolling and the static constraint blocks are built once per
``(problem, backend)`` pair — the batch runner inherits this per-group
sharing because each of its ``(case_study, backend)`` groups is exactly one
``run_pipeline`` call.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field

from repro.api.config import FARConfig, SynthesisConfig
from repro.core.attack_synthesis import AttackSynthesisResult
from repro.core.far import FalseAlarmStudy
from repro.core.session import SynthesisSession
from repro.core.synthesis_result import ThresholdSynthesisResult


@dataclass
class PipelineReport:
    """Aggregated output of one end-to-end pipeline run.

    Attributes
    ----------
    vulnerability:
        Algorithm 1 result with no residue detector: does an attack bypass
        the existing monitors at all?
    synthesis:
        Per-algorithm :class:`~repro.core.synthesis_result.ThresholdSynthesisResult`.
    far_study:
        FAR comparison over the shared benign population (``None`` when FAR
        evaluation was skipped).
    """

    vulnerability: AttackSynthesisResult
    synthesis: dict[str, ThresholdSynthesisResult] = field(default_factory=dict)
    far_study: FalseAlarmStudy | None = None

    @property
    def is_vulnerable(self) -> bool:
        """True when the plant's own monitors can be bypassed."""
        return self.vulnerability.found

    def summary_rows(self) -> list[dict]:
        """Tabular summary, one row per algorithm, sorted by algorithm name.

        The sort makes JSON exports and printed tables reproducible
        run-to-run regardless of synthesis execution order.
        """
        rows = []
        for name in sorted(self.synthesis):
            result = self.synthesis[name]
            row = {
                "algorithm": name,
                "rounds": result.rounds,
                "converged": result.converged,
                "solver_time_s": round(result.total_solver_time, 3),
            }
            if self.far_study is not None and name in self.far_study.rates:
                row["false_alarm_rate"] = self.far_study.rates[name]
            rows.append(row)
        return rows


def run_pipeline(
    problem,
    synthesis: SynthesisConfig | None = None,
    far: FARConfig | None = None,
    *,
    backend=None,
    far_noise_model=None,
) -> PipelineReport:
    """Run vulnerability check, threshold synthesis and FAR study on ``problem``.

    Parameters
    ----------
    problem:
        The :class:`~repro.core.problem.SynthesisProblem` instance.
    synthesis:
        Declarative synthesis settings (defaults to all three algorithms on
        the LP backend).
    far:
        Declarative FAR settings; ``None`` (or ``count=0``) skips the study.
    backend:
        Optional backend *instance* overriding ``synthesis.backend`` — the
        programmatic escape hatch for pre-configured or caller-supplied
        solvers.
    far_noise_model:
        Optional noise-model *instance* overriding the FAR config's
        declarative noise settings.
    """
    if synthesis is None:
        synthesis = SynthesisConfig()
    solver = backend if backend is not None else synthesis.build_backend()

    # One incremental session serves the vulnerability check and every
    # algorithm: the encoding's static blocks are built once per call.
    session = SynthesisSession(problem, backend=solver)
    vulnerability = session.solve(None)
    report = PipelineReport(vulnerability=vulnerability)

    for name in synthesis.algorithms:
        synthesizer = synthesis.build_synthesizer(name, backend=solver)
        # Third-party synthesizers registered into SYNTHESIZERS may predate
        # the session protocol; only pass the shared session when accepted.
        if "session" in inspect.signature(synthesizer.synthesize).parameters:
            report.synthesis[name] = synthesizer.synthesize(problem, session=session)
        else:
            report.synthesis[name] = synthesizer.synthesize(problem)

    if far is not None and far.count > 0 and report.synthesis:
        detectors = {
            name: result.threshold
            for name, result in report.synthesis.items()
            if result.threshold is not None
        }
        if detectors:
            evaluator = far.build_evaluator(problem, noise_model=far_noise_model)
            report.far_study = evaluator.evaluate(detectors)
    return report


__all__ = ["PipelineReport", "run_pipeline"]
