"""Config-driven execution of the paper's end-to-end workflow.

:func:`run_pipeline` is the canonical implementation of the workflow the
paper evaluates — vulnerability check (Algorithm 1 with no residue
detector), threshold synthesis per algorithm, FAR study — driven by the
declarative configs in :mod:`repro.api.config`.  The legacy
:class:`~repro.core.pipeline.SynthesisPipeline` is a thin adapter over this
function.

One :class:`~repro.core.session.SynthesisSession` is opened per call and
shared by the vulnerability check and every synthesis algorithm, so the
horizon unrolling and the static constraint blocks are built once per
``(problem, backend)`` pair — the batch runner inherits this per-group
sharing because each of its ``(case_study, backend)`` groups is exactly one
``run_pipeline`` call.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field

from repro.api.config import FARConfig, SynthesisConfig
from repro.core.attack_synthesis import AttackSynthesisResult
from repro.core.far import FalseAlarmStudy
from repro.core.session import SynthesisSession
from repro.core.synthesis_result import ThresholdSynthesisResult


@dataclass
class PipelineReport:
    """Aggregated output of one end-to-end pipeline run.

    Attributes
    ----------
    vulnerability:
        Algorithm 1 result with no residue detector: does an attack bypass
        the existing monitors at all?
    synthesis:
        Per-algorithm :class:`~repro.core.synthesis_result.ThresholdSynthesisResult`.
    far_study:
        FAR comparison over the shared benign population (``None`` when FAR
        evaluation was skipped).
    """

    vulnerability: AttackSynthesisResult
    synthesis: dict[str, ThresholdSynthesisResult] = field(default_factory=dict)
    far_study: FalseAlarmStudy | None = None

    @property
    def is_vulnerable(self) -> bool:
        """True when the plant's own monitors can be bypassed."""
        return self.vulnerability.found

    def summary_rows(self) -> list[dict]:
        """Tabular summary, one row per algorithm, sorted by algorithm name.

        The sort makes JSON exports and printed tables reproducible
        run-to-run regardless of synthesis execution order.
        """
        rows = []
        for name in sorted(self.synthesis):
            result = self.synthesis[name]
            row = {
                "algorithm": name,
                "rounds": result.rounds,
                "converged": result.converged,
                "solver_time_s": round(result.total_solver_time, 3),
            }
            if self.far_study is not None and name in self.far_study.rates:
                row["false_alarm_rate"] = self.far_study.rates[name]
            rows.append(row)
        return rows


def _report_payload(report: PipelineReport) -> dict:
    """JSON form of a report for the content-addressed store (lossy).

    Persists every scalar outcome plus the synthesized threshold vectors;
    per-round histories, attack witnesses, traces and FAR details are
    dropped — a report served from the store answers "what came out", not
    "how it got there".
    """
    payload = {
        "vulnerability": {
            "status": report.vulnerability.status.value,
            "verified": report.vulnerability.verified,
            "elapsed": report.vulnerability.elapsed,
        },
        "synthesis": {},
        "far_study": None,
    }
    for name, result in report.synthesis.items():
        threshold = result.threshold
        payload["synthesis"][name] = {
            "threshold": None
            if threshold is None
            else {
                "values": [float(v) for v in threshold.values],
                "norm": threshold.norm,
                "weights": None
                if threshold.weights is None
                else [float(w) for w in threshold.weights],
            },
            "rounds": result.rounds,
            "converged": result.converged,
            "status": result.status.value,
            "vulnerable_without_detector": result.vulnerable_without_detector,
            "total_solver_time": result.total_solver_time,
            "algorithm": result.algorithm,
        }
    if report.far_study is not None:
        study = report.far_study
        payload["far_study"] = {
            "rates": dict(study.rates),
            "generated": study.generated,
            "kept": study.kept,
            "discarded_pfc": study.discarded_pfc,
            "discarded_mdc": study.discarded_mdc,
        }
    return payload


def _report_from_payload(payload: dict) -> PipelineReport:
    """Rebuild a (lossy) :class:`PipelineReport` from :func:`_report_payload`."""
    from repro.detectors.threshold import ThresholdVector
    from repro.utils.results import SolveStatus

    vulnerability = AttackSynthesisResult(
        status=SolveStatus(payload["vulnerability"]["status"]),
        verified=payload["vulnerability"]["verified"],
        elapsed=payload["vulnerability"]["elapsed"],
        diagnostics={"from_store": True},
    )
    report = PipelineReport(vulnerability=vulnerability)
    for name, entry in payload["synthesis"].items():
        stored = entry["threshold"]
        threshold = None
        if stored is not None:
            norm = stored["norm"]
            threshold = ThresholdVector(
                values=stored["values"],
                norm=norm if norm == "inf" else int(norm),
                weights=stored["weights"],
                metadata={"from_store": True},
            )
        report.synthesis[name] = ThresholdSynthesisResult(
            threshold=threshold,
            rounds=entry["rounds"],
            converged=entry["converged"],
            status=SolveStatus(entry["status"]),
            vulnerable_without_detector=entry["vulnerable_without_detector"],
            total_solver_time=entry["total_solver_time"],
            algorithm=entry["algorithm"],
        )
    if payload["far_study"] is not None:
        study = payload["far_study"]
        report.far_study = FalseAlarmStudy(
            rates=dict(study["rates"]),
            generated=study["generated"],
            kept=study["kept"],
            discarded_pfc=study["discarded_pfc"],
            discarded_mdc=study["discarded_mdc"],
            details={"from_store": True},
        )
    return report


def run_pipeline(
    problem,
    synthesis: SynthesisConfig | None = None,
    far: FARConfig | None = None,
    *,
    backend=None,
    far_noise_model=None,
    store=None,
) -> PipelineReport:
    """Run vulnerability check, threshold synthesis and FAR study on ``problem``.

    Parameters
    ----------
    problem:
        The :class:`~repro.core.problem.SynthesisProblem` instance.
    synthesis:
        Declarative synthesis settings (defaults to all three algorithms on
        the LP backend).
    far:
        Declarative FAR settings; ``None`` (or ``count=0``) skips the study.
    backend:
        Optional backend *instance* overriding ``synthesis.backend`` — the
        programmatic escape hatch for pre-configured or caller-supplied
        solvers.
    far_noise_model:
        Optional noise-model *instance* overriding the FAR config's
        declarative noise settings.
    store:
        Optional content-addressed result store (a path or a
        :class:`repro.explore.store.ResultStore`).  The call is keyed by the
        problem's content fingerprint plus both configs; a hit skips all
        solver work and returns a report rebuilt from disk (lossy: per-round
        histories and attack witnesses are not persisted).  Caller-supplied
        ``backend`` / ``far_noise_model`` *instances* bypass the store —
        their configuration is not content-addressable.
    """
    if synthesis is None:
        synthesis = SynthesisConfig()

    store_key = None
    if store is not None and backend is None and far_noise_model is None:
        from repro.explore.store import as_store, canonical_config_key, problem_fingerprint

        store = as_store(store)
        store_key = canonical_config_key(
            {
                "kind": "run_pipeline",
                "problem": problem_fingerprint(problem),
                "synthesis": synthesis.to_dict(),
                "far": None if far is None else far.to_dict(),
            }
        )
        cached = store.get(store_key)
        if cached is not None:
            return _report_from_payload(cached)

    solver = backend if backend is not None else synthesis.build_backend()

    # One incremental session serves the vulnerability check and every
    # algorithm: the encoding's static blocks are built once per call.
    session = SynthesisSession(problem, backend=solver)
    vulnerability = session.solve(None)
    report = PipelineReport(vulnerability=vulnerability)

    for name in synthesis.algorithms:
        synthesizer = synthesis.build_synthesizer(name, backend=solver)
        # Third-party synthesizers registered into SYNTHESIZERS may predate
        # the session protocol; only pass the shared session when accepted.
        if "session" in inspect.signature(synthesizer.synthesize).parameters:
            report.synthesis[name] = synthesizer.synthesize(problem, session=session)
        else:
            report.synthesis[name] = synthesizer.synthesize(problem)

    if far is not None and far.count > 0 and report.synthesis:
        detectors = {
            name: result.threshold
            for name, result in report.synthesis.items()
            if result.threshold is not None
        }
        if detectors:
            evaluator = far.build_evaluator(problem, noise_model=far_noise_model)
            report.far_study = evaluator.evaluate(detectors)

    if store_key is not None:
        # No flush: the JSONL log is durable per record and the index
        # sidecar is rebuilt on open; flushing here would rewrite the whole
        # index once per cached call.
        store.put(store_key, {"kind": "run_pipeline", "problem": problem.name}, _report_payload(report))
    return report


__all__ = ["PipelineReport", "run_pipeline"]
