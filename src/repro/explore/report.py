"""Aggregated outcome of one design-space exploration.

Mirrors :class:`~repro.api.execute.PipelineReport` one level up: where the
pipeline report summarises one problem, an :class:`ExplorationReport`
summarises a whole design space — every evaluated row, the Pareto front
over the configured objectives, per-axis sensitivity summaries and the
engine's cache/evaluation statistics — and is JSON round-trippable for
archiving next to the store.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.explore.pareto import front_signature, pareto_front, sensitivity
from repro.explore.space import DEFAULT_OBJECTIVES, SearchSpace

#: Stable row ordering: the coordinate columns in axis order.
_SORT_FIELDS = (
    "case_study",
    "synthesizer",
    "backend",
    "detector",
    "horizon",
    "noise_scale",
    "min_threshold",
    "far_budget",
)


def _row_sort_key(row: dict) -> tuple:
    # (is_missing, value) pairs keep None-valued axes (default horizon)
    # comparable with set ones; each column is consistently typed otherwise.
    return tuple(
        (1, 0) if row.get(name) is None else (0, row[name]) for name in _SORT_FIELDS
    )


@dataclass
class ExplorationReport:
    """Result table, front and statistics of one :class:`Explorer` run.

    Attributes
    ----------
    name:
        The exploration's display name.
    space:
        The explored :class:`~repro.explore.space.SearchSpace` (``to_dict``
        form, so the report stays plain data).
    sampler:
        Registry name of the sampler that drove the run.
    objectives:
        The minimized objective fields.
    rows:
        One flat dict per explored point: coordinates + synthesis outcome +
        metrics + ``key`` (content address) + ``feasible`` (FAR within the
        point's budget).
    stats:
        Engine counters: ``points`` proposed, ``units`` lowered,
        ``units_executed`` fresh, ``store_hits`` / ``store_misses``,
        ``rounds`` of sampler refinement.
    """

    name: str = "exploration"
    space: dict = field(default_factory=dict)
    sampler: str = "grid"
    objectives: tuple[str, ...] = DEFAULT_OBJECTIVES
    rows: list[dict] = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if isinstance(self.space, SearchSpace):
            self.space = self.space.to_dict()
        self.objectives = tuple(self.objectives)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    # ------------------------------------------------------------------
    def summary_rows(self) -> list[dict]:
        """Every row, in the stable coordinate sort order."""
        return sorted(self.rows, key=_row_sort_key)

    def front(self) -> list[dict]:
        """The non-dominated rows, in the stable coordinate sort order."""
        return sorted(pareto_front(self.rows, self.objectives), key=_row_sort_key)

    def front_signature(self) -> set[tuple]:
        """Objective vectors on the front (order/point-identity invariant)."""
        return front_signature(self.rows, self.objectives)

    def sensitivity(self, axis: str) -> dict:
        """Objective summaries grouped by one axis (see :func:`pareto.sensitivity`)."""
        return sensitivity(self.rows, axis, self.objectives)

    def best(self, objective: str) -> dict | None:
        """The feasible row minimizing one objective (``None`` if unmeasured)."""
        measured = [
            row
            for row in self.rows
            if row.get("error") is None
            and row.get("feasible", True)
            and row.get(objective) is not None
        ]
        if not measured:
            return None
        return min(measured, key=lambda row: (row[objective], _row_sort_key(row)))

    @property
    def errors(self) -> list[dict]:
        """Rows that failed with an exception."""
        return [row for row in self.rows if row.get("error") is not None]

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data representation (JSON-compatible)."""
        return {
            "name": self.name,
            "space": dict(self.space),
            "sampler": self.sampler,
            "objectives": list(self.objectives),
            "rows": self.summary_rows(),
            "stats": dict(self.stats),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExplorationReport":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            name=data["name"],
            space=dict(data["space"]),
            sampler=data["sampler"],
            objectives=tuple(data["objectives"]),
            rows=[dict(row) for row in data["rows"]],
            stats=dict(data.get("stats", {})),
        )

    def to_json(self, indent: int | None = 2) -> str:
        """JSON string form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExplorationReport":
        """Rebuild from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))
