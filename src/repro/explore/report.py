"""Aggregated outcome of one design-space exploration.

Mirrors :class:`~repro.api.execute.PipelineReport` one level up: where the
pipeline report summarises one problem, an :class:`ExplorationReport`
summarises a whole design space — every evaluated row, the Pareto front
over the configured objectives, per-axis sensitivity summaries and the
engine's cache/evaluation statistics — and is JSON round-trippable for
archiving next to the store.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.explore.pareto import front_signature, pareto_front, rung_latency_fields, sensitivity
from repro.explore.space import DEFAULT_OBJECTIVES, SearchSpace

#: Stable row ordering: the coordinate columns in axis order.
_SORT_FIELDS = (
    "case_study",
    "synthesizer",
    "backend",
    "detector",
    "horizon",
    "noise_scale",
    "min_threshold",
    "far_budget",
)


def _row_sort_key(row: dict) -> tuple:
    # (is_missing, value) pairs keep None-valued axes (default horizon)
    # comparable with set ones; each column is consistently typed otherwise.
    return tuple(
        (1, 0) if row.get(name) is None else (0, row[name]) for name in _SORT_FIELDS
    )


@dataclass
class ExplorationReport:
    """Result table, front and statistics of one :class:`Explorer` run.

    Attributes
    ----------
    name:
        The exploration's display name.
    space:
        The explored :class:`~repro.explore.space.SearchSpace` (``to_dict``
        form, so the report stays plain data).
    sampler:
        Registry name of the sampler that drove the run.
    objectives:
        The minimized objective fields.
    rows:
        One flat dict per explored point: coordinates + synthesis outcome +
        metrics + ``key`` (content address) + ``feasible`` (FAR within the
        point's budget).
    stats:
        Engine counters: ``points`` proposed, ``units`` lowered,
        ``units_executed`` fresh, ``store_hits`` / ``store_misses``,
        ``rounds`` of sampler refinement.
    """

    name: str = "exploration"
    space: dict = field(default_factory=dict)
    sampler: str = "grid"
    objectives: tuple[str, ...] = DEFAULT_OBJECTIVES
    rows: list[dict] = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if isinstance(self.space, SearchSpace):
            self.space = self.space.to_dict()
        self.objectives = tuple(self.objectives)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    # ------------------------------------------------------------------
    def summary_rows(self) -> list[dict]:
        """Every row, in the stable coordinate sort order."""
        return sorted(self.rows, key=_row_sort_key)

    def front(self, objectives: tuple[str, ...] | None = None) -> list[dict]:
        """The non-dominated rows, in the stable coordinate sort order.

        ``objectives`` overrides the report's configured objectives — e.g. a
        single per-rung latency column from :meth:`rung_latency_fields`.
        """
        return sorted(
            pareto_front(self.rows, objectives or self.objectives), key=_row_sort_key
        )

    def front_signature(self, objectives: tuple[str, ...] | None = None) -> set[tuple]:
        """Objective vectors on the front (order/point-identity invariant)."""
        return front_signature(self.rows, objectives or self.objectives)

    def sensitivity(self, axis: str, objectives: tuple[str, ...] | None = None) -> dict:
        """Objective summaries grouped by one axis (see :func:`pareto.sensitivity`)."""
        return sensitivity(self.rows, axis, objectives or self.objectives)

    def rung_latency_fields(self) -> tuple[str, ...]:
        """Per-rung latency columns of the probe attack ladder, weakest first.

        One ``mean_detection_latency_x<multiplier>`` column per configured
        ``probe_biases`` rung; each is a valid ``objectives`` entry for
        :meth:`front` / :meth:`sensitivity`.
        """
        return rung_latency_fields(self.rows)

    def latency_ladder(self) -> dict[str, dict]:
        """Summary of every per-rung latency column over the feasible rows.

        Returns ``{column: {"count", "mean", "min", "max"}}`` — how mean
        detection latency degrades as the probe attack weakens toward the
        detection boundary.
        """
        ladder: dict[str, dict] = {}
        for column in self.rung_latency_fields():
            measured = [
                row[column]
                for row in self.rows
                if row.get("error") is None
                and row.get("feasible", True)
                and row.get(column) is not None
            ]
            if measured:
                ladder[column] = {
                    "count": len(measured),
                    "mean": sum(measured) / len(measured),
                    "min": min(measured),
                    "max": max(measured),
                }
        return ladder

    def best(self, objective: str) -> dict | None:
        """The feasible row minimizing one objective (``None`` if unmeasured)."""
        measured = [
            row
            for row in self.rows
            if row.get("error") is None
            and row.get("feasible", True)
            and row.get(objective) is not None
        ]
        if not measured:
            return None
        return min(measured, key=lambda row: (row[objective], _row_sort_key(row)))

    @property
    def errors(self) -> list[dict]:
        """Rows that failed with an exception."""
        return [row for row in self.rows if row.get("error") is not None]

    # ------------------------------------------------------------------
    def plot_front(
        self,
        path: str | None = None,
        *,
        ax=None,
        x: str = "stealth_margin",
        y: str = "false_alarm_rate",
        show_dominated: bool = True,
    ):
        """Paper-style trade-off scatter: the front over ``(x, y)``.

        Defaults to the paper's headline axes — stealthy-attack margin
        against false-alarm rate — with the non-dominated rows drawn as one
        connected front over the dominated cloud.  Requires ``matplotlib``
        (an optional dependency: ``pip install matplotlib``); everything
        else in the library works without it.

        Parameters
        ----------
        path:
            When given, the figure is saved there (format from the
            extension) — the headless/CI-friendly mode.
        ax:
            Existing matplotlib ``Axes`` to draw into; when ``None`` a new
            figure is created.
        x / y:
            Row fields to plot (any objective or metric column, e.g. a
            per-rung latency field from :meth:`rung_latency_fields`).
        show_dominated:
            Also draw the dominated feasible rows (muted, behind the front).

        Returns
        -------
        matplotlib.axes.Axes
            The axes drawn into.
        """
        try:
            import matplotlib.pyplot as plt
        except ImportError as exc:  # pragma: no cover - exercised via message test
            raise ImportError(
                "ExplorationReport.plot_front requires matplotlib, which is an "
                "optional dependency of this library; install it with "
                "'pip install matplotlib' (or the dev extras: pip install -e .[dev])"
            ) from exc

        def measured(rows: list[dict]) -> list[dict]:
            return [
                row
                for row in rows
                if row.get("error") is None
                and row.get("feasible", True)
                and row.get(x) is not None
                and row.get(y) is not None
            ]

        front_rows = measured(self.front())
        front_keys = {id(row) for row in front_rows}
        dominated = [row for row in measured(self.rows) if id(row) not in front_keys]

        created_figure = ax is None
        if created_figure:
            _, ax = plt.subplots(figsize=(6.4, 4.2))

        # Any FAR-family column (false_alarm_rate, false_alarm_rate_raw, ...)
        # renders as percent so raw-vs-relaxed plots stay comparable.
        as_percent = y.startswith("false_alarm_rate")
        scale = 100.0 if as_percent else 1.0
        if show_dominated and dominated:
            ax.scatter(
                [row[x] for row in dominated],
                [scale * row[y] for row in dominated],
                s=22,
                color="0.78",
                label="dominated",
                zorder=2,
            )
        if front_rows:
            ordered = sorted(front_rows, key=lambda row: (row[x], row[y]))
            xs = [row[x] for row in ordered]
            ys = [scale * row[y] for row in ordered]
            ax.plot(xs, ys, color="#2a6f97", linewidth=1.4, alpha=0.9, zorder=3)
            ax.scatter(xs, ys, s=34, color="#2a6f97", label="Pareto front", zorder=4)

        ax.set_xlabel(x.replace("_", " "))
        ax.set_ylabel(y.replace("_", " ") + (" [%]" if as_percent else ""))
        ax.set_title(self.name)
        ax.grid(True, linewidth=0.4, alpha=0.35)
        if dominated or front_rows:
            ax.legend(frameon=False, fontsize=9)
        if path is not None:
            ax.figure.savefig(path, dpi=150, bbox_inches="tight")
            if created_figure:
                plt.close(ax.figure)
        return ax

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data representation (JSON-compatible)."""
        return {
            "name": self.name,
            "space": dict(self.space),
            "sampler": self.sampler,
            "objectives": list(self.objectives),
            "rows": self.summary_rows(),
            "stats": dict(self.stats),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExplorationReport":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            name=data["name"],
            space=dict(data["space"]),
            sampler=data["sampler"],
            objectives=tuple(data["objectives"]),
            rows=[dict(row) for row in data["rows"]],
            stats=dict(data.get("stats", {})),
        )

    def to_json(self, indent: int | None = 2) -> str:
        """JSON string form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExplorationReport":
        """Rebuild from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))
