"""Non-dominated front extraction over exploration result rows.

Works on the flat row dicts the :class:`~repro.explore.engine.Explorer`
produces (coordinates + outcome + metrics).  All objectives are
*minimized*:

* ``false_alarm_rate`` — benign alarms are cost;
* ``mean_detection_latency`` — slow detection is cost;
* ``stealth_margin`` — mean finite threshold, the residue room a stealthy
  attacker retains below the detection boundary.

A missing objective value (``None``) is treated as ``+inf``: the row can
still reach the front through the objectives it does have, but never beats
a row that actually measured the missing quantity.
"""

from __future__ import annotations

import math

from repro.explore.space import DEFAULT_OBJECTIVES

__all__ = [
    "DEFAULT_OBJECTIVES",
    "RUNG_LATENCY_PREFIX",
    "objective_vector",
    "dominates",
    "pareto_front",
    "front_signature",
    "rung_latency_fields",
]

#: Prefix of the per-rung latency columns the probe attack ladder produces
#: (``mean_detection_latency_x1.1`` for the 1.1x-threshold rung, ...).
RUNG_LATENCY_PREFIX = "mean_detection_latency_x"


def rung_latency_fields(rows: list[dict]) -> tuple[str, ...]:
    """Per-rung latency column names present in ``rows``, weakest rung first.

    The probe attack ladder emits one ``mean_detection_latency_x<m>`` column
    per bias multiplier ``m``; any of them can be handed to
    :func:`pareto_front` / :func:`sensitivity` as an objective in place of
    the rung-averaged ``mean_detection_latency`` aggregate.
    """
    found: dict[str, float] = {}
    for row in rows:
        for key in row:
            if key.startswith(RUNG_LATENCY_PREFIX) and key not in found:
                try:
                    found[key] = float(key[len(RUNG_LATENCY_PREFIX):])
                except ValueError:
                    continue
    return tuple(sorted(found, key=found.get))


def objective_vector(row: dict, objectives=DEFAULT_OBJECTIVES) -> tuple[float, ...]:
    """The row's objective values, with ``None``/absent mapped to ``+inf``."""
    vector = []
    for objective in objectives:
        value = row.get(objective)
        vector.append(math.inf if value is None else float(value))
    return tuple(vector)


def dominates(a: tuple[float, ...], b: tuple[float, ...]) -> bool:
    """True when ``a`` is no worse than ``b`` everywhere and better somewhere."""
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def _candidate(row: dict) -> bool:
    return row.get("error") is None and row.get("feasible", True)


def pareto_front(rows: list[dict], objectives=DEFAULT_OBJECTIVES) -> list[dict]:
    """The non-dominated subset of ``rows`` (input order preserved).

    Error rows and rows marked ``feasible: False`` (measured FAR above the
    point's budget) never enter the front.  Rows with identical objective
    vectors are all kept — they are equally good trade-offs.
    """
    candidates = [(row, objective_vector(row, objectives)) for row in rows if _candidate(row)]
    front = []
    for index, (row, vector) in enumerate(candidates):
        if all(math.isinf(value) for value in vector):
            continue  # nothing measured: no basis for a trade-off
        dominated = any(
            dominates(other, vector)
            for other_index, (_, other) in enumerate(candidates)
            if other_index != index
        )
        if not dominated:
            front.append(row)
    return front


def front_signature(rows: list[dict], objectives=DEFAULT_OBJECTIVES) -> set[tuple[float, ...]]:
    """The set of objective vectors on the front — sampler-order invariant.

    Two explorations found "the same front" exactly when their signatures
    are equal, regardless of which (equivalent) points realised each vector.
    """
    return {objective_vector(row, objectives) for row in pareto_front(rows, objectives)}


def sensitivity(rows: list[dict], axis: str, objectives=DEFAULT_OBJECTIVES) -> dict:
    """Per-axis-value objective summaries: how a single axis moves the metrics.

    Returns ``{axis value: {"count": n, objective: {"mean", "min", "max"}}}``
    over the candidate (non-error, feasible) rows; objectives with no
    measured value at some axis value are omitted there.
    """
    groups: dict[object, list[dict]] = {}
    for row in rows:
        if _candidate(row):
            groups.setdefault(row.get(axis), []).append(row)
    summary: dict = {}
    for value in sorted(groups, key=repr):
        group = groups[value]
        entry: dict = {"count": len(group)}
        for objective in objectives:
            measured = [row[objective] for row in group if row.get(objective) is not None]
            if measured:
                entry[objective] = {
                    "mean": sum(measured) / len(measured),
                    "min": min(measured),
                    "max": max(measured),
                }
        summary[value] = entry
    return summary
