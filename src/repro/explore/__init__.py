"""Design-space exploration: Pareto fronts over the paper's trade-off axes.

The subsystem turns the reproduction into the tool the paper implies: sweep
detectors × horizons × noise scales × threshold floors × case studies
(with an optional declarative ``relax=`` stage applied to every synthesized
point), extract the (FAR, detection latency, stealth margin) Pareto surface
— latency resolved by a probe attack ladder (1.1x/1.5x/3x of each
candidate's own threshold) — and never recompute a point twice thanks to a
persistent content-addressed result store whose keys split into a synthesis
half and an evaluation half (noise/FAR/probe variations of a synthesized
point re-run only the cheap evaluation).  Walkthrough:
``docs/exploration.md``.

Four layers::

    SearchSpace / samplers   which points exist and in what order  (space)
    ResultStore              content-addressed persistence + resume (store)
    Explorer                 batch evaluation through BatchRunner  (engine)
    pareto / ExplorationReport  fronts, sensitivity, JSON export   (pareto, report)

Quick start::

    from repro.explore import SearchSpace, Explorer

    space = SearchSpace(
        case_studies=("dcmotor",),
        min_thresholds=(0.0, 0.01, 0.02, 0.04),
        noise_scales=(0.5, 1.0),
    )
    report = Explorer(space, "grid", store="./results").run()
    for row in report.front():
        print(row["min_threshold"], row["false_alarm_rate"], row["stealth_margin"])

Samplers are plugins: ``@repro.registry.register_sampler("my-sampler")``.
"""

from repro.explore.pareto import (
    dominates,
    front_signature,
    objective_vector,
    pareto_front,
    sensitivity,
)
from repro.explore.report import ExplorationReport
from repro.explore.space import (
    DEFAULT_OBJECTIVES,
    AdaptiveBisectionSampler,
    ExplorePoint,
    GridSampler,
    Sampler,
    SearchSpace,
)
from repro.explore.store import (
    ResultStore,
    StoreCorruptionWarning,
    canonical_config_key,
    problem_fingerprint,
)
from repro.explore.engine import ExploreConfig, Explorer, run_exploration

__all__ = [
    "DEFAULT_OBJECTIVES",
    "AdaptiveBisectionSampler",
    "ExplorationReport",
    "ExploreConfig",
    "ExplorePoint",
    "Explorer",
    "GridSampler",
    "ResultStore",
    "Sampler",
    "SearchSpace",
    "StoreCorruptionWarning",
    "canonical_config_key",
    "dominates",
    "front_signature",
    "objective_vector",
    "pareto_front",
    "problem_fingerprint",
    "run_exploration",
    "sensitivity",
]
