"""The exploration engine: sampler-driven evaluation of a design space.

:class:`Explorer` runs the loop the subsystem exists for::

    points = sampler.initial(space)
    while points:
        rows += evaluate(points)            # BatchRunner fan-out + store
        points = sampler.refine(space, rows)

Evaluation lowers each point into an
:class:`~repro.api.config.ExperimentUnit` and hands the batch to
:meth:`repro.api.runner.BatchRunner.run_units`, inheriting everything the
batch layer already does: per-group sharing of the vulnerability check /
incremental :class:`~repro.core.session.SynthesisSession` / FAR population,
``multiprocessing`` fan-out, per-row error capture, and content-addressed
store reuse — full-row hits skip everything, and synthesis-key hits
(points whose FAR/noise/probe settings changed but whose synthesis half is
stored) re-run only the evaluation with zero solver calls.  Points that
differ only in ``far_budget`` share one unit (and one store entry); the
engine emits one row per point regardless.

:class:`ExploreConfig` is the declarative, JSON-round-trippable form of an
exploration (space + sampler + store + fan-out), and
:func:`run_exploration` the one-call entry point.
"""

from __future__ import annotations

import inspect
import json
from dataclasses import dataclass, field

from repro.api.config import _checked_fields
from repro.api.runner import BatchRunner, ExperimentRow
from repro.explore.report import ExplorationReport
from repro.explore.space import DEFAULT_OBJECTIVES, ExplorePoint, SearchSpace
from repro.explore.store import ResultStore, as_store, canonical_config_key
from repro.obs.metrics import get_registry
from repro.obs.trace import span
from repro.registry import SAMPLERS
from repro.utils.validation import ValidationError


@dataclass
class ExploreConfig:
    """Declarative description of one design-space exploration.

    Parameters
    ----------
    space:
        The :class:`~repro.explore.space.SearchSpace` (or its ``to_dict``
        form).
    sampler / sampler_options:
        Registry name (and constructor kwargs) of the sampler that walks
        the space.
    store_path:
        Optional directory of the persistent content-addressed
        :class:`~repro.explore.store.ResultStore`; ``None`` explores without
        cross-run reuse.
    workers:
        Batch-runner fan-out (``"auto"`` = CPU-affinity count).
    max_points:
        Safety cap on the number of points evaluated (``None`` = unbounded;
        hitting the cap sets ``stats["truncated"]``).
    objectives:
        The minimized row fields for front extraction.
    name:
        Display name carried onto the report.
    """

    space: SearchSpace = field(default_factory=SearchSpace)
    sampler: str = "grid"
    sampler_options: dict = field(default_factory=dict)
    store_path: str | None = None
    workers: int | str | None = None
    max_points: int | None = None
    objectives: tuple[str, ...] = DEFAULT_OBJECTIVES
    name: str = "exploration"

    def __post_init__(self) -> None:
        if isinstance(self.space, dict):
            self.space = SearchSpace.from_dict(self.space)
        self.sampler = str(self.sampler)
        if self.sampler not in SAMPLERS:
            raise ValidationError(
                f"unknown sampler {self.sampler!r}; "
                f"available: {', '.join(SAMPLERS.available())}"
            )
        self.objectives = tuple(str(o) for o in self.objectives)
        if not self.objectives:
            raise ValidationError("objectives must name at least one row field")
        if self.max_points is not None:
            self.max_points = int(self.max_points)
            if self.max_points <= 0:
                raise ValidationError("max_points must be positive")

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data representation (JSON-compatible)."""
        return {
            "space": self.space.to_dict(),
            "sampler": self.sampler,
            "sampler_options": dict(self.sampler_options),
            "store_path": self.store_path,
            "workers": self.workers,
            "max_points": self.max_points,
            "objectives": list(self.objectives),
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExploreConfig":
        """Rebuild from :meth:`to_dict` output (unknown keys rejected)."""
        return cls(**_checked_fields(cls, data))

    def to_json(self, indent: int | None = 2) -> str:
        """JSON string form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExploreConfig":
        """Rebuild from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


class Explorer:
    """Expand, evaluate and refine a :class:`SearchSpace` into a report.

    Parameters
    ----------
    space:
        The design space (or an :class:`ExploreConfig`, which supplies every
        other parameter as defaults).
    sampler / sampler_options / store / workers / max_points / objectives / name:
        As on :class:`ExploreConfig`; ``store`` also accepts a live
        :class:`~repro.explore.store.ResultStore` instance.
    """

    def __init__(
        self,
        space: SearchSpace | ExploreConfig,
        sampler: str | None = None,
        *,
        sampler_options: dict | None = None,
        store: ResultStore | str | None = None,
        workers: int | str | None = None,
        max_points: int | None = None,
        objectives: tuple[str, ...] | None = None,
        name: str | None = None,
    ):
        if isinstance(space, ExploreConfig):
            config = space
            self.space = config.space
            self.sampler = sampler or config.sampler
            self.sampler_options = dict(
                config.sampler_options if sampler_options is None else sampler_options
            )
            self.store = as_store(store if store is not None else config.store_path)
            self.workers = workers if workers is not None else config.workers
            self.max_points = max_points if max_points is not None else config.max_points
            self.objectives = tuple(objectives or config.objectives)
            self.name = name or config.name
        else:
            self.space = space
            self.sampler = sampler or "grid"
            self.sampler_options = dict(sampler_options or {})
            self.store = as_store(store)
            self.workers = workers
            self.max_points = max_points
            self.objectives = tuple(objectives or DEFAULT_OBJECTIVES)
            self.name = name or "exploration"
        if self.sampler not in SAMPLERS:
            raise ValidationError(
                f"unknown sampler {self.sampler!r}; "
                f"available: {', '.join(SAMPLERS.available())}"
            )

    # ------------------------------------------------------------------
    def _flat_row(self, point: ExplorePoint, key: str | None, row: ExperimentRow) -> dict:
        data = row.to_dict()
        metrics = data.pop("metrics", {})
        # The unit's algorithm duplicates the point's synthesizer coordinate.
        data.pop("algorithm", None)
        data.pop("case_study", None)
        data.pop("backend", None)
        flat = {**point.coordinates(), **data, **metrics, "key": key}
        far = flat.get("false_alarm_rate")
        flat["feasible"] = row.error is None and (
            far is None or far <= point.far_budget + 1e-12
        )
        return flat

    # ------------------------------------------------------------------
    def _build_sampler(self):
        """Instantiate the sampler, forwarding the run's objectives.

        Samplers that look at metrics (adaptive bisection) must compare the
        same objectives the front is extracted over; explicit
        ``sampler_options`` still win.
        """
        factory = SAMPLERS.get(self.sampler)
        options = dict(self.sampler_options)
        try:
            parameters = inspect.signature(factory).parameters
        except (TypeError, ValueError):  # pragma: no cover - builtins only
            parameters = {}
        if "objectives" in parameters:
            options.setdefault("objectives", self.objectives)
        return factory(**options)

    def run(self) -> ExplorationReport:
        """Drive the sampler to exhaustion and return the aggregated report."""
        sampler = self._build_sampler()
        runner = BatchRunner(None, workers=self.workers, store=self.store)
        hits_before = self.store.hits if self.store is not None else 0
        misses_before = self.store.misses if self.store is not None else 0

        registry = get_registry()
        points_counter = registry.counter(
            "explore_points_total", help="Design points accepted for evaluation."
        )
        units_counter = registry.counter(
            "explore_units_total", help="Units lowered from design points."
        )
        rounds_counter = registry.counter(
            "explore_rounds_total", help="Sampler rounds (initial + refinements)."
        )
        proposals_counter = registry.counter(
            "explore_proposals_total",
            help="Points proposed by the sampler, duplicates included.",
        )

        rows: list[dict] = []
        seen: set[ExplorePoint] = set()
        stats = {
            "points": 0,
            "units": 0,
            "units_executed": 0,
            "rounds": 0,
            "truncated": False,
        }

        pending = sampler.initial(self.space)
        while pending:
            proposals_counter.inc(len(pending), sampler=self.sampler)
            batch = [point for point in pending if point not in seen]
            if not batch:
                break
            if self.max_points is not None:
                room = self.max_points - stats["points"]
                if room <= 0:
                    stats["truncated"] = True
                    break
                if len(batch) > room:
                    batch = batch[:room]
                    stats["truncated"] = True
            seen.update(batch)
            stats["points"] += len(batch)
            stats["rounds"] += 1
            points_counter.inc(len(batch), sampler=self.sampler)
            rounds_counter.inc(sampler=self.sampler)

            # Points differing only in far_budget lower to the same unit:
            # evaluate once, emit one row per point.
            units: list = []
            grouped_points: list[list[ExplorePoint]] = []
            unit_index: dict[str, int] = {}
            for point in batch:
                unit = self.space.unit(point)
                unit_key = canonical_config_key(unit.to_dict())
                index = unit_index.get(unit_key)
                if index is None:
                    unit_index[unit_key] = len(units)
                    units.append(unit)
                    grouped_points.append([point])
                else:
                    grouped_points[index].append(point)
            stats["units"] += len(units)

            units_counter.inc(len(units), sampler=self.sampler)

            # A store miss inside run_units is exactly a fresh execution
            # (error rows included; they also re-run on resume).
            batch_misses = self.store.misses if self.store is not None else 0
            with span("explore.round", sampler=self.sampler, round=stats["rounds"]):
                pairs = runner.run_units(units)
            stats["units_executed"] += (
                self.store.misses - batch_misses if self.store is not None else len(units)
            )
            for (key, row), points in zip(pairs, grouped_points):
                for point in points:
                    rows.append(self._flat_row(point, key, row))

            pending = sampler.refine(self.space, rows)

        if self.store is not None:
            stats["store_hits"] = self.store.hits - hits_before
            stats["store_misses"] = self.store.misses - misses_before
            # Units that missed as full rows but found their synthesis half
            # on disk: executed with zero solver calls (evaluation only).
            stats["synthesis_reused"] = runner.synthesis_reused
            self.store.flush()
        return ExplorationReport(
            name=self.name,
            space=self.space,
            sampler=self.sampler,
            objectives=self.objectives,
            rows=rows,
            stats=stats,
        )


def run_exploration(config: ExploreConfig | SearchSpace | dict, **overrides) -> ExplorationReport:
    """One-call entry point: build an :class:`Explorer` and run it.

    ``config`` may be an :class:`ExploreConfig` (or its ``to_dict`` /
    ``from_json`` form) or a bare :class:`SearchSpace`; keyword overrides
    (``store=``, ``workers=``, ``sampler=``, ...) pass through to
    :class:`Explorer`.
    """
    if isinstance(config, dict):
        config = ExploreConfig.from_dict(config)
    sampler = overrides.pop("sampler", None)
    return Explorer(config, sampler, **overrides).run()
