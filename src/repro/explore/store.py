"""Persistent content-addressed result store for design-space exploration.

The store maps a *stable hash of the canonical config dict* of an experiment
point to the JSON row that point produced, so that re-running an exploration
— or any :func:`repro.api.execute.run_pipeline` / ``BatchRunner`` call opted
in via a ``store=`` kwarg — never recomputes an already-solved point and can
resume after an interruption.

Layout (one directory per store)::

    <path>/results.jsonl   one JSON object per line: {"key", "config", "row"}
    <path>/index.json      {"version", "count", "size", "keys": {key: offset}}

``results.jsonl`` is the single source of truth and is strictly append-only;
``index.json`` is a rebuildable sidecar mapping every key to its record's
byte offset — the store itself replays the log on open (rows live in
memory), so the index exists for external tooling and future partial
readers to seek records without a full replay, and as cheap staleness
metadata (``size``/``count``).  On open the JSONL log is replayed line by
line:

* a truncated/corrupt *trailing* line (the signature of a crash mid-append)
  is dropped and the file truncated back to the last good record;
* a corrupt *interior* line is skipped (its key simply re-computes);
* a missing or stale ``index.json`` is rebuilt from the replay.

Cache-key stability guarantees
------------------------------
Keys are SHA-256 over the canonical JSON form of the config dict (sorted
keys, no whitespace, ``allow_nan=False``).  Configs are plain data produced
by ``to_dict()`` methods, so a key is stable across processes, Python
versions and machines as long as the config is value-identical.  Anything
that changes the computation (case study, horizon, backend, algorithm,
synthesis knobs, FAR population, probe settings) must therefore be *in* the
config; anything that does not (e.g. a Pareto feasibility budget) must stay
out, so equal computations share one entry.

Synthesis / evaluation key split
--------------------------------
An experiment unit's content address is the *pair* of two SHA-256 halves
(:func:`split_unit_keys`):

* the **synthesis key** hashes the fields that determine the solver work —
  problem (case study + options, horizon), synthesizer, backend, synthesis
  knobs (``max_rounds``, ``min_threshold``) and the relax stage;
* the **evaluation key** hashes the fields that only post-process the
  synthesized detector — the FAR population (count/seed/noise scale/...)
  and the online probe settings.

The full row is stored under ``"<synthesis>:<evaluation>"``
(:func:`unit_store_key`), and the reusable synthesis outcome additionally
under ``"synthesis:<synthesis>"`` (:func:`synthesis_store_key`).  Units
that differ only in their evaluation half — e.g. the same point re-explored
across noise scales or FAR budgets — therefore find their synthesis record
on disk and re-run only the cheap evaluation, with zero solver calls.
Every :class:`~repro.api.config.ExperimentUnit` field must be classified
into exactly one half; an unclassified field raises, so a future field
cannot silently corrupt the cache.

The first write for a key wins: a ``put`` for an existing key is a no-op,
which keeps rows served from the store bit-identical to the first fresh
computation for the lifetime of the store.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import warnings
from pathlib import Path

import numpy as np

from repro.utils.validation import ValidationError

_INDEX_VERSION = 1
_INDEX_FLUSH_EVERY = 64


def canonical_config_key(config: dict) -> str:
    """Stable SHA-256 hex key of a JSON-compatible config dict.

    Raises :class:`ValidationError` when ``config`` is not canonicalizable
    (non-JSON values, NaN/Infinity) — a loud failure beats a silently
    unstable cache key.
    """
    try:
        text = json.dumps(
            config, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except (TypeError, ValueError) as exc:
        raise ValidationError(
            f"config is not canonicalizable for content addressing: {exc}"
        ) from exc
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


#: :class:`~repro.api.config.ExperimentUnit` fields whose values change the
#: solver work (the synthesis half of the content address).
SYNTHESIS_KEY_FIELDS = (
    "case_study",
    "case_study_options",
    "backend",
    "algorithm",
    "max_rounds",
    "min_threshold",
    "relax",
)

#: Unit fields that only post-process an already-synthesized detector (the
#: evaluation half of the content address).
EVALUATION_KEY_FIELDS = ("far", "probe")


def split_unit_keys(config: dict) -> tuple[str, str]:
    """The ``(synthesis_key, evaluation_key)`` halves of a unit config.

    ``config`` is an :class:`~repro.api.config.ExperimentUnit` ``to_dict()``
    payload.  Fields belonging to neither half raise
    :class:`ValidationError`: a new unit field must be explicitly classified
    as changing the synthesis or only the evaluation before it can be
    content-addressed, otherwise value-distinct computations could silently
    share a cache entry.
    """
    unknown = set(config) - set(SYNTHESIS_KEY_FIELDS) - set(EVALUATION_KEY_FIELDS)
    if unknown:
        raise ValidationError(
            f"unit config fields {sorted(unknown)} are not classified as "
            "synthesis or evaluation fields; add them to "
            "SYNTHESIS_KEY_FIELDS or EVALUATION_KEY_FIELDS in repro.explore.store"
        )
    synthesis = canonical_config_key({k: config.get(k) for k in SYNTHESIS_KEY_FIELDS})
    evaluation = canonical_config_key({k: config.get(k) for k in EVALUATION_KEY_FIELDS})
    return synthesis, evaluation


def unit_store_key(config: dict) -> str:
    """Full content address of a unit: ``"<synthesis_key>:<evaluation_key>"``."""
    synthesis, evaluation = split_unit_keys(config)
    return f"{synthesis}:{evaluation}"


def synthesis_store_key(config: dict) -> str:
    """Store key of a unit's reusable synthesis record: ``"synthesis:<key>"``."""
    return "synthesis:" + split_unit_keys(config)[0]


def _float_token(value: float):
    """A float as an exact, canonical-JSON-safe token (inf/nan as strings)."""
    value = float(value)
    return value if np.isfinite(value) else repr(value)


def _array_token(value) -> list | None:
    """Exact list form of an array-like (hash input; None passes through)."""
    if value is None:
        return None
    return [_float_token(v) for v in np.asarray(value, dtype=float).reshape(-1)]


def _structure_token(obj):
    """Exact JSON-compatible form of a (possibly nested) dataclass tree.

    Criteria and monitors are dataclasses over numbers and numpy arrays;
    walking their fields keeps every float at full value — unlike ``repr``,
    whose numpy formatting rounds to the *display* precision and depends on
    the process's ``np.printoptions`` (a correctness hazard for a cache
    key).  Exotic non-dataclass members fall back to ``repr`` best-effort.
    """
    if isinstance(obj, float):
        return _float_token(obj)
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, np.generic):
        return _structure_token(obj.item())
    if isinstance(obj, np.ndarray):
        return {
            "__array__": _array_token(obj) if obj.dtype.kind == "f" else obj.reshape(-1).tolist(),
            "shape": list(obj.shape),
        }
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        token = {"__type__": type(obj).__name__}
        for field in dataclasses.fields(obj):
            token[field.name] = _structure_token(getattr(obj, field.name))
        return token
    if isinstance(obj, (list, tuple)):
        return [_structure_token(value) for value in obj]
    if isinstance(obj, dict):
        return {
            str(key): _structure_token(value)
            for key, value in sorted(obj.items(), key=lambda item: str(item[0]))
        }
    return repr(obj)


def problem_fingerprint(problem) -> str:
    """Content hash of a :class:`~repro.core.problem.SynthesisProblem`.

    Covers everything the synthesis outcome depends on: the closed-loop
    matrices (exact float values), the analysis horizon, the attacker model
    and the criterion/monitor definitions (recursively tokenized dataclass
    fields, exact to the float).  Used to content-address
    :func:`repro.api.execute.run_pipeline` calls, which take a problem
    *instance* rather than a registry name.
    """
    system = problem.system
    plant = system.plant
    payload = {
        "name": problem.name,
        "horizon": int(problem.horizon),
        "strictness": float(problem.strictness),
        "residue_norm": str(problem.residue_norm),
        "residue_weights": _array_token(problem.residue_weights),
        "x0": _array_token(problem.x0),
        "initial_box": (
            None
            if problem.initial_box is None
            else [_array_token(problem.initial_box[0]), _array_token(problem.initial_box[1])]
        ),
        "attack_mask": (
            None if problem.attack_mask is None else sorted(problem.attack_mask.attackable)
        ),
        "attack_bound": (
            None if problem.attack_bound is None else _array_token(problem.attack_bound)
        ),
        "pfc": _structure_token(problem.pfc),
        "mdc": _structure_token(problem.mdc),
        "plant": {
            "A": _array_token(plant.A),
            "B": _array_token(plant.B),
            "C": _array_token(plant.C),
            "D": _array_token(getattr(plant, "D", None)),
            "dt": None if plant.dt is None else float(plant.dt),
            "R_v": _array_token(plant.R_v),
            "Q_w": _array_token(plant.Q_w),
        },
        "K": _array_token(system.K),
        "L": _array_token(system.L),
        "reference": _array_token(system.reference),
        "feedforward": _array_token(system.feedforward),
    }
    return canonical_config_key(payload)


class StoreCorruptionWarning(UserWarning):
    """Emitted when opening a store requires dropping unreadable records."""


class ResultStore:
    """Persistent content-addressed map from config keys to result rows.

    Parameters
    ----------
    path:
        Directory holding ``results.jsonl`` and ``index.json``; created on
        first use.

    Notes
    -----
    All rows are held in memory (they are small JSON dicts); the JSONL log
    is append-only and flushed per record, so a run interrupted at any point
    loses at most the record being written — which the next open detects and
    truncates.  ``hits`` / ``misses`` count :meth:`get` outcomes since open,
    so callers can report cache effectiveness.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.results_path = self.path / "results.jsonl"
        self.index_path = self.path / "index.json"
        self._rows: dict[str, dict] = {}
        self._offsets: dict[str, int] = {}
        self._dirty = 0
        self.hits = 0
        self.misses = 0
        self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        if not self.results_path.exists():
            self._write_index()
            return
        dropped = 0
        good_end = 0
        with self.results_path.open("rb") as handle:
            offset = 0
            for line in handle:
                next_offset = offset + len(line)
                try:
                    # A record not terminated by its newline is the partial
                    # write of an interrupted append — even when the bytes
                    # happen to parse as JSON, the next append would fuse
                    # with it, so it must be truncated, not kept.
                    if not line.endswith(b"\n"):
                        raise ValueError("unterminated record")
                    record = json.loads(line.decode("utf-8"))
                    key = record["key"]
                    row = record["row"]
                    if not isinstance(key, str) or not isinstance(row, dict):
                        raise ValueError("malformed record")
                except (ValueError, KeyError, UnicodeDecodeError):
                    dropped += 1
                    offset = next_offset
                    continue
                if key not in self._rows:  # first write wins
                    self._rows[key] = row
                    self._offsets[key] = offset
                good_end = next_offset
                offset = next_offset
        size = self.results_path.stat().st_size
        if dropped:
            warnings.warn(
                f"result store {self.path}: dropped {dropped} unreadable record(s); "
                f"{len(self._rows)} recovered",
                StoreCorruptionWarning,
                stacklevel=3,
            )
        if good_end < size:
            # Truncate a partially-written tail so the next append starts
            # from a clean record boundary.
            with self.results_path.open("r+b") as handle:
                handle.truncate(good_end)
        if not self._index_current():
            self._write_index()

    # ------------------------------------------------------------------
    def _index_current(self) -> bool:
        """Whether the on-disk index matches the replayed log (skip rewrite)."""
        try:
            index = json.loads(self.index_path.read_text())
        except (OSError, ValueError):
            return False
        size = self.results_path.stat().st_size if self.results_path.exists() else 0
        return (
            index.get("version") == _INDEX_VERSION
            and index.get("size") == size
            and index.get("keys") == self._offsets
        )

    def _write_index(self) -> None:
        payload = {
            "version": _INDEX_VERSION,
            "count": len(self._rows),
            "size": self.results_path.stat().st_size if self.results_path.exists() else 0,
            "keys": self._offsets,
        }
        tmp = self.index_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, self.index_path)
        self._dirty = 0

    def flush(self) -> None:
        """Persist the index sidecar (the JSONL log is always up to date)."""
        if self._dirty:
            self._write_index()

    # ------------------------------------------------------------------
    def get(self, key: str) -> dict | None:
        """The stored row for ``key`` (a copy), or ``None`` on a miss."""
        row = self.peek(key)
        if row is None:
            self.misses += 1
        else:
            self.hits += 1
        return row

    def peek(self, key: str) -> dict | None:
        """Like :meth:`get` but without touching the hit/miss counters.

        Used for cache-*adjacent* lookups (the synthesis-half records behind
        :func:`synthesis_store_key`) whose outcome must not distort the
        row-level cache-effectiveness statistics callers report.
        """
        row = self._rows.get(key)
        return None if row is None else json.loads(json.dumps(row))

    def put(self, key: str, config: dict, row: dict) -> bool:
        """Append one record; returns False (no-op) when ``key`` exists."""
        if key in self._rows:
            return False
        record = {"key": key, "config": config, "row": row}
        line = json.dumps(record, sort_keys=True) + "\n"
        offset = self.results_path.stat().st_size if self.results_path.exists() else 0
        with self.results_path.open("a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
        self._rows[key] = json.loads(json.dumps(row))
        self._offsets[key] = offset
        self._dirty += 1
        if self._dirty >= _INDEX_FLUSH_EVERY:
            self._write_index()
        return True

    # ------------------------------------------------------------------
    def keys(self) -> list[str]:
        """Every stored key (unsorted-input insertion order)."""
        return list(self._rows)

    def __contains__(self, key: object) -> bool:
        return key in self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.flush()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({str(self.path)!r}, entries={len(self)})"


def as_store(store) -> ResultStore | None:
    """Coerce a ``store=`` argument: None, a path, or a ResultStore."""
    if store is None or isinstance(store, ResultStore):
        return store
    return ResultStore(store)
