"""Declarative design spaces and the samplers that walk them.

A :class:`SearchSpace` names the axes of a design-space exploration — case
studies, synthesis algorithms, backends, online detector forms, horizons,
benign-noise scales, threshold floors and FAR budgets — as plain registry
names and numbers, so a whole exploration is JSON round-trippable the same
way one :class:`~repro.api.config.ExperimentSpec` is.

Every coordinate combination is an :class:`ExplorePoint`; the space knows
how to lower a point into the :class:`~repro.api.config.ExperimentUnit` the
batch runner executes.  The ``far_budget`` axis is deliberately *not* part
of that unit: it caps the acceptable false-alarm rate when fronts are
extracted, but does not change the computation, so points differing only in
budget share one content-addressed store entry.

Samplers decide which points to evaluate and in what order.  They are
plugins (``@register_sampler`` / ``available_samplers()`` in
:mod:`repro.registry`); two ship with the library:

* ``grid`` — exhaustive enumeration of the full cartesian product;
* ``adaptive-bisection`` — evaluates the corners of the numeric box first,
  then recursively bisects only those grid intervals whose endpoint metrics
  differ, skipping the interior of constant plateaus.  Threshold synthesis
  responds piecewise-constantly to floors and Monte-Carlo FAR to noise
  scales, so large plateaus are the common case and the sampler typically
  recovers the exhaustive grid's Pareto front with a fraction of the
  synthesis calls.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field

from repro.api.config import ExperimentUnit, FARConfig, RelaxConfig, _checked_fields
from repro.registry import (
    ATTACK_TEMPLATES,
    BACKENDS,
    CASE_STUDIES,
    DETECTORS,
    SYNTHESIZERS,
    register_sampler,
)
from repro.utils.validation import ValidationError

#: Detector forms a synthesized threshold can be deployed as for the
#: online latency probe (see :func:`repro.api.runner._run_probe`).
PROBE_DETECTORS = ("online-residue", "online-cusum")

#: Objectives every sampler and front extraction minimizes by default.
DEFAULT_OBJECTIVES = ("false_alarm_rate", "mean_detection_latency", "stealth_margin")


@dataclass(frozen=True)
class ExplorePoint:
    """One coordinate combination of a :class:`SearchSpace`.

    ``horizon=None`` means "the case study's own default horizon".  Points
    are frozen/hashable so samplers can dedupe proposals across rounds.
    """

    case_study: str
    synthesizer: str
    backend: str
    detector: str
    horizon: int | None
    noise_scale: float
    min_threshold: float
    far_budget: float

    def coordinates(self) -> dict:
        """The point as a plain dict (the coordinate part of a result row)."""
        return {
            "case_study": self.case_study,
            "synthesizer": self.synthesizer,
            "backend": self.backend,
            "detector": self.detector,
            "horizon": self.horizon,
            "noise_scale": self.noise_scale,
            "min_threshold": self.min_threshold,
            "far_budget": self.far_budget,
        }


def _float_axis(label: str, values) -> tuple[float, ...]:
    result = tuple(sorted({float(v) for v in values}))
    if not result:
        raise ValidationError(f"{label} must hold at least one value")
    return result


@dataclass
class SearchSpace:
    """A declarative design space over the paper's trade-off axes.

    Axis parameters (each a tuple; the grid is their cartesian product)
    ----------------------------------------------------------------------
    case_studies / synthesizers / backends:
        Registry names of the plants, threshold-synthesis algorithms and
        solver backends to sweep.
    detectors:
        Online deployment forms for the latency probe (from
        :data:`PROBE_DETECTORS`).
    horizons:
        Analysis horizons ``T`` (empty tuple = each case study's default).
    noise_scales:
        Benign measurement-noise envelopes, as sigma multiples of the
        plant's measurement noise (drives both the FAR study and the probe).
    min_thresholds:
        Threshold floors passed to the synthesizers — the paper's knob that
        trades stealthy-attack margin against false alarms.
    far_budgets:
        Acceptable FAR caps; a point whose measured FAR exceeds its budget
        is infeasible for front extraction.  Not part of the computation
        (and therefore not of the store key).

    Shared settings (identical for every point)
    ----------------------------------------------------------------------
    max_rounds:
        Safety cap on synthesis rounds per point.
    relax:
        Optional declarative relaxation stage applied to every synthesized
        point before FAR evaluation and probing: a
        :class:`~repro.api.config.RelaxConfig` (or its dict form, or
        ``True`` for the defaults).  Part of each unit's *synthesis* key —
        relaxation issues solver calls, so its outcome is cached and reused
        alongside the raw synthesis.
    far_count / far_seed / filter_pfc / filter_mdc:
        The Monte-Carlo FAR population (``far_count=0`` disables FAR).
    probe_instances:
        Fleet size of the online detection-latency probe (0 disables it).
    probe_horizon:
        Probe fleet horizon (``None`` = the problem's horizon).
    probe_attack / probe_attack_options / probe_attack_start:
        The scheduled attack the probe injects.  A ``bias`` template with no
        explicit magnitude is scaled per candidate (see ``probe_biases``).
    probe_biases:
        The attack ladder: for a ``bias`` probe with no explicit magnitude,
        the fleet is probed once per rung at ``multiplier x`` the
        candidate's mean threshold, yielding per-rung
        ``mean_detection_latency_x<m>`` columns plus rung-averaged
        aggregates — near-threshold rungs make the latency objective
        actually vary across the front.  An empty tuple restores the single
        3x probe.
    probe_seed:
        Seed of the probe fleet's noise streams.
    """

    case_studies: tuple[str, ...] = ("dcmotor",)
    synthesizers: tuple[str, ...] = ("stepwise",)
    backends: tuple[str, ...] = ("lp",)
    detectors: tuple[str, ...] = ("online-residue",)
    horizons: tuple[int, ...] = ()
    noise_scales: tuple[float, ...] = (1.0,)
    min_thresholds: tuple[float, ...] = (0.0,)
    far_budgets: tuple[float, ...] = (1.0,)
    max_rounds: int = 150
    relax: RelaxConfig | None = None
    far_count: int = 100
    far_seed: int = 0
    filter_pfc: bool = False
    filter_mdc: bool = False
    probe_instances: int = 24
    probe_horizon: int | None = None
    probe_attack: str = "bias"
    probe_attack_options: dict = field(default_factory=dict)
    probe_attack_start: int = 2
    probe_biases: tuple[float, ...] = (1.1, 1.5, 3.0)
    probe_seed: int = 0

    def __post_init__(self) -> None:
        for label, names, registry in (
            ("case_studies", self.case_studies, CASE_STUDIES),
            ("synthesizers", self.synthesizers, SYNTHESIZERS),
            ("backends", self.backends, BACKENDS),
            ("detectors", self.detectors, DETECTORS),
        ):
            names = tuple(str(n) for n in (names if not isinstance(names, str) else (names,)))
            if not names:
                raise ValidationError(f"{label} must name at least one entry")
            unknown = set(names) - set(registry.available())
            if unknown:
                raise ValidationError(
                    f"unknown {label} {sorted(unknown)}; "
                    f"available: {', '.join(registry.available())}"
                )
            setattr(self, label, names)
        unsupported = set(self.detectors) - set(PROBE_DETECTORS)
        if unsupported:
            raise ValidationError(
                f"detectors {sorted(unsupported)} cannot be deployed from a "
                f"synthesized threshold; supported: {', '.join(PROBE_DETECTORS)}"
            )
        self.horizons = tuple(sorted({int(h) for h in self.horizons}))
        if any(h <= 0 for h in self.horizons):
            raise ValidationError("horizons must be positive")
        self.noise_scales = _float_axis("noise_scales", self.noise_scales)
        self.min_thresholds = _float_axis("min_thresholds", self.min_thresholds)
        if any(v < 0 for v in self.min_thresholds):
            raise ValidationError("min_thresholds must be non-negative")
        self.far_budgets = _float_axis("far_budgets", self.far_budgets)
        self.max_rounds = int(self.max_rounds)
        self.far_count = int(self.far_count)
        if self.far_count < 0:
            raise ValidationError("far_count must be non-negative")
        self.probe_instances = int(self.probe_instances)
        if self.probe_instances < 0:
            raise ValidationError("probe_instances must be non-negative")
        if self.probe_attack not in ATTACK_TEMPLATES:
            raise ValidationError(
                f"unknown probe attack template {self.probe_attack!r}; "
                f"available: {', '.join(ATTACK_TEMPLATES.available())}"
            )
        if self.relax is True:
            self.relax = RelaxConfig()
        elif self.relax is False:
            self.relax = None
        elif isinstance(self.relax, dict):
            self.relax = RelaxConfig.from_dict(self.relax)
        self.probe_biases = tuple(sorted({float(b) for b in self.probe_biases}))
        if any(b <= 0 for b in self.probe_biases):
            raise ValidationError("probe_biases must be positive multipliers")

    # ------------------------------------------------------------------
    def axes(self) -> dict[str, tuple]:
        """Axis name → values, in grid-expansion order."""
        return {
            "case_study": self.case_studies,
            "synthesizer": self.synthesizers,
            "backend": self.backends,
            "detector": self.detectors,
            "horizon": self.horizons or (None,),
            "noise_scale": self.noise_scales,
            "min_threshold": self.min_thresholds,
            "far_budget": self.far_budgets,
        }

    @property
    def size(self) -> int:
        """Number of points in the full grid."""
        size = 1
        for values in self.axes().values():
            size *= len(values)
        return size

    def points(self) -> list[ExplorePoint]:
        """The full cartesian product, in axis order."""
        axes = self.axes()
        return [
            ExplorePoint(**dict(zip(axes.keys(), combo)))
            for combo in itertools.product(*axes.values())
        ]

    # ------------------------------------------------------------------
    def unit(self, point: ExplorePoint) -> ExperimentUnit:
        """Lower a point into the executable batch-runner unit.

        The unit's ``to_dict()`` payload is the point's content address;
        everything that changes the computation must flow through here (and
        ``far_budget``, which does not, must not).
        """
        options = {}
        if point.horizon is not None:
            options["horizon"] = point.horizon
        far = None
        if self.far_count > 0:
            far = FARConfig(
                count=self.far_count,
                seed=self.far_seed,
                noise_scale=point.noise_scale,
                filter_pfc=self.filter_pfc,
                filter_mdc=self.filter_mdc,
            )
        probe = None
        if self.probe_instances > 0:
            probe = {
                "detector": point.detector,
                "n_instances": self.probe_instances,
                "horizon": self.probe_horizon,
                "noise_scale": point.noise_scale,
                "attack": {
                    "template": self.probe_attack,
                    "options": dict(self.probe_attack_options),
                    "start": self.probe_attack_start,
                },
                "seed": self.probe_seed,
            }
            # The attack ladder only applies to auto-scaled bias probes; for
            # any other template the biases would not change the computation
            # and therefore must stay out of the content address.
            if (
                self.probe_biases
                and self.probe_attack == "bias"
                and "bias" not in self.probe_attack_options
            ):
                probe["biases"] = list(self.probe_biases)
        return ExperimentUnit(
            case_study=point.case_study,
            backend=point.backend,
            algorithm=point.synthesizer,
            case_study_options=options,
            max_rounds=self.max_rounds,
            min_threshold=point.min_threshold,
            relax=self.relax,
            far=far,
            probe=probe,
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data representation (JSON-compatible)."""
        return {
            "case_studies": list(self.case_studies),
            "synthesizers": list(self.synthesizers),
            "backends": list(self.backends),
            "detectors": list(self.detectors),
            "horizons": list(self.horizons),
            "noise_scales": list(self.noise_scales),
            "min_thresholds": list(self.min_thresholds),
            "far_budgets": list(self.far_budgets),
            "max_rounds": self.max_rounds,
            "relax": None if self.relax is None else self.relax.to_dict(),
            "far_count": self.far_count,
            "far_seed": self.far_seed,
            "filter_pfc": self.filter_pfc,
            "filter_mdc": self.filter_mdc,
            "probe_instances": self.probe_instances,
            "probe_horizon": self.probe_horizon,
            "probe_attack": self.probe_attack,
            "probe_attack_options": dict(self.probe_attack_options),
            "probe_attack_start": self.probe_attack_start,
            "probe_biases": list(self.probe_biases),
            "probe_seed": self.probe_seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SearchSpace":
        """Rebuild from :meth:`to_dict` output (unknown keys rejected)."""
        return cls(**_checked_fields(cls, data))

    def to_json(self, indent: int | None = 2) -> str:
        """JSON string form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SearchSpace":
        """Rebuild from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Samplers.
# ----------------------------------------------------------------------
class Sampler:
    """Iteration protocol every design-space sampler implements.

    :meth:`initial` proposes the first batch of points; after each batch is
    evaluated the engine calls :meth:`refine` with every result row so far
    (flat dicts: coordinates + outcome + metrics) and evaluates whatever it
    returns, until a round proposes nothing new.
    """

    def initial(self, space: SearchSpace) -> list[ExplorePoint]:
        raise NotImplementedError

    def refine(self, space: SearchSpace, rows: list[dict]) -> list[ExplorePoint]:
        raise NotImplementedError


@register_sampler("grid")
class GridSampler(Sampler):
    """Exhaustive enumeration of the full cartesian product."""

    def initial(self, space: SearchSpace) -> list[ExplorePoint]:
        return space.points()

    def refine(self, space: SearchSpace, rows: list[dict]) -> list[ExplorePoint]:
        return []


#: Numeric axes the adaptive sampler bisects, in coordinate order.
_NUMERIC_AXES = ("horizon", "noise_scale", "min_threshold")
_CATEGORICAL_AXES = ("case_study", "synthesizer", "backend", "detector")


@register_sampler("adaptive-bisection")
class AdaptiveBisectionSampler(Sampler):
    """Recursive interval bisection along the numeric grid axes.

    The first batch is the cartesian product of the categorical axes with
    the *endpoints* of every numeric axis (the corners of the numeric box).
    Each refinement round then looks at every 1-D grid line through the
    evaluated points and, for each pair of adjacent evaluated values with
    unevaluated grid values between them, proposes the midpoint **iff** the
    two endpoint rows disagree — different status, or any objective
    differing by more than ``tolerance``.  Intervals whose endpoints agree
    are taken to be plateaus and their interior is never evaluated.

    The proposal set is always a subset of the grid, so the sampler
    degrades to the exhaustive grid in the worst case and terminates after
    at most ``log2(axis length)`` rounds per variation region.  Fronts match
    the exhaustive grid exactly whenever equal-endpoint intervals really
    are constant — the case for threshold synthesis (piecewise-constant in
    the floor) and fixed-seed Monte-Carlo FAR (plateaus in the noise
    scale).  A response that dips strictly inside an equal-endpoint
    interval is the documented blind spot; lower ``tolerance`` and denser
    grids shrink it.

    Parameters
    ----------
    objectives:
        Row fields compared between interval endpoints (default
        :data:`DEFAULT_OBJECTIVES`).
    tolerance:
        Absolute per-objective difference below which two rows count as
        equal (default ``0.0`` — exact agreement, the right choice for the
        library's deterministic seeded metrics).
    """

    def __init__(self, objectives=DEFAULT_OBJECTIVES, tolerance: float = 0.0):
        self.objectives = tuple(objectives)
        self.tolerance = float(tolerance)

    # ------------------------------------------------------------------
    def initial(self, space: SearchSpace) -> list[ExplorePoint]:
        axes = space.axes()
        numeric_choices = []
        for name in _NUMERIC_AXES:
            values = axes[name]
            endpoints = (values[0], values[-1]) if len(values) > 1 else (values[0],)
            numeric_choices.append(tuple(dict.fromkeys(endpoints)))
        combos = itertools.product(
            *(axes[name] for name in _CATEGORICAL_AXES),
            *numeric_choices,
            axes["far_budget"],
        )
        names = _CATEGORICAL_AXES + _NUMERIC_AXES + ("far_budget",)
        return [ExplorePoint(**dict(zip(names, combo))) for combo in combos]

    # ------------------------------------------------------------------
    def _signature(self, row: dict) -> tuple:
        values = [row.get("status")]
        for objective in self.objectives:
            values.append(row.get(objective))
        return tuple(values)

    def _agree(self, a: tuple, b: tuple) -> bool:
        for x, y in zip(a, b):
            if x is None or y is None or isinstance(x, str) or isinstance(y, str):
                if x != y:
                    return False
            elif abs(float(x) - float(y)) > self.tolerance:
                return False
        return True

    def refine(self, space: SearchSpace, rows: list[dict]) -> list[ExplorePoint]:
        axes = space.axes()
        # One signature per computational coordinate (rows duplicated across
        # far budgets share their metrics; first one wins).
        evaluated: dict[tuple, tuple] = {}
        for row in rows:
            coord = tuple(row[name] for name in _CATEGORICAL_AXES + _NUMERIC_AXES)
            evaluated.setdefault(coord, self._signature(row))

        proposals: set[tuple] = set()
        n_cat = len(_CATEGORICAL_AXES)
        for axis_offset, axis_name in enumerate(_NUMERIC_AXES):
            values = axes[axis_name]
            if len(values) < 2:
                continue
            position = {value: index for index, value in enumerate(values)}
            axis_index = n_cat + axis_offset
            lines: dict[tuple, list[tuple]] = {}
            for coord, signature in evaluated.items():
                line_key = coord[:axis_index] + coord[axis_index + 1 :]
                lines.setdefault(line_key, []).append(
                    (position[coord[axis_index]], signature)
                )

            for line_key, entries in lines.items():
                entries.sort(key=lambda item: item[0])

                def coord_at(index: int) -> tuple:
                    return (
                        line_key[:axis_index]
                        + (values[index],)
                        + line_key[axis_index:]
                    )

                # A line opened by another axis' refinement gets its own
                # endpoints before any bisection happens on it.
                if entries[0][0] != 0:
                    proposals.add(coord_at(0))
                if entries[-1][0] != len(values) - 1:
                    proposals.add(coord_at(len(values) - 1))
                for (low, sig_low), (high, sig_high) in zip(entries, entries[1:]):
                    if high - low > 1 and not self._agree(sig_low, sig_high):
                        proposals.add(coord_at((low + high) // 2))

        names = _CATEGORICAL_AXES + _NUMERIC_AXES
        points = []
        for coord in sorted(proposals, key=repr):
            if coord in evaluated:
                continue
            base = dict(zip(names, coord))
            for budget in axes["far_budget"]:
                points.append(ExplorePoint(**base, far_budget=budget))
        return points
