"""Composite monitor: conjunction of several monitors with a shared alarm line."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.monitors.base import LinearCondition, Monitor, MonitorReport
from repro.monitors.deadzone import DeadZoneMonitor


@dataclass
class CompositeMonitor(Monitor):
    """A bank of monitors evaluated together.

    The composite is *satisfied* at a sample when every member's check passes,
    and it *alarms* when any member alarms (each member applies its own
    dead-zone policy).  This models the paper's ``mdc``: the conjunction of
    all range, gradient and relation monitors of the ECU.
    """

    monitors: list[Monitor] = field(default_factory=list)
    name: str = "mdc"

    def add(self, monitor: Monitor) -> "CompositeMonitor":
        """Append a monitor and return ``self`` for chaining."""
        self.monitors.append(monitor)
        return self

    def __iter__(self):
        return iter(self.monitors)

    def __len__(self) -> int:
        return len(self.monitors)

    def satisfied(self, measurements: np.ndarray, dt: float) -> np.ndarray:
        measurements = np.atleast_2d(np.asarray(measurements, dtype=float))
        horizon = measurements.shape[0]
        result = np.ones(horizon, dtype=bool)
        for monitor in self.monitors:
            result &= monitor.satisfied(measurements, dt)
        return result

    def alarms(self, measurements: np.ndarray, dt: float) -> np.ndarray:
        measurements = np.atleast_2d(np.asarray(measurements, dtype=float))
        horizon = measurements.shape[0]
        result = np.zeros(horizon, dtype=bool)
        for monitor in self.monitors:
            result |= monitor.alarms(measurements, dt)
        return result

    def conditions_at(self, k: int, dt: float) -> list[LinearCondition]:
        conditions: list[LinearCondition] = []
        for monitor in self.monitors:
            conditions.extend(monitor.conditions_at(k, dt))
        return conditions

    def member_reports(self, measurements: np.ndarray, dt: float) -> list[MonitorReport]:
        """Per-member evaluation reports (useful for the Fig. 2 style plots)."""
        measurements = np.atleast_2d(np.asarray(measurements, dtype=float))
        return [monitor.report(measurements, dt) for monitor in self.monitors]

    def dead_zone_members(self) -> list[DeadZoneMonitor]:
        """Members that carry dead-zone semantics (needed by exact encoders)."""
        return [m for m in self.monitors if isinstance(m, DeadZoneMonitor)]

    def plain_members(self) -> list[Monitor]:
        """Members without dead-zone semantics."""
        return [m for m in self.monitors if not isinstance(m, DeadZoneMonitor)]

    @classmethod
    def empty(cls) -> "CompositeMonitor":
        """A composite with no members (always satisfied, never alarms)."""
        return cls(monitors=[], name="mdc-empty")
