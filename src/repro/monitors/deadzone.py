"""Dead-zone wrapper: alarm only after sustained violation.

The paper's VSC monitoring system does not alarm on an isolated violation:
"it waits for a certain duration, called dead zone.  Continuous violation
during the dead zone causes the monitoring system to raise an alarm."  With a
40 ms sampling period and a 300 ms dead zone this is 7 consecutive samples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.monitors.base import LinearCondition, Monitor
from repro.utils.validation import check_positive


@dataclass
class DeadZoneMonitor(Monitor):
    """Wraps an inner monitor with a consecutive-violation counter.

    An alarm is raised at sample ``k`` when the inner check has been violated
    at every one of the last ``dead_zone_samples`` samples (inclusive of
    ``k``).

    Attributes
    ----------
    inner:
        The wrapped monitor whose per-sample check is counted.
    dead_zone_samples:
        Number of consecutive violations required to alarm.
    """

    inner: Monitor
    dead_zone_samples: int
    name: str = "deadzone"

    def __post_init__(self) -> None:
        self.dead_zone_samples = int(check_positive("dead_zone_samples", self.dead_zone_samples))
        if not self.name or self.name == "deadzone":
            self.name = f"deadzone({self.inner.name})"

    def satisfied(self, measurements: np.ndarray, dt: float) -> np.ndarray:
        """Per-sample result of the *inner* check (dead zone does not change it)."""
        return self.inner.satisfied(measurements, dt)

    def alarms(self, measurements: np.ndarray, dt: float) -> np.ndarray:
        """Alarm where the inner check failed for ``dead_zone_samples`` samples in a row."""
        violated = ~self.inner.satisfied(measurements, dt)
        horizon = violated.shape[0]
        alarms = np.zeros(horizon, dtype=bool)
        run_length = 0
        for k in range(horizon):
            run_length = run_length + 1 if violated[k] else 0
            if run_length >= self.dead_zone_samples:
                alarms[k] = True
        return alarms

    def conditions_at(self, k: int, dt: float) -> list[LinearCondition]:
        """Inner conditions at sample ``k`` (stealth interpretation is up to the encoder).

        Encoders that treat dead zones exactly must consult
        :attr:`dead_zone_samples` and require, for every window of that
        length, at least one sample where the inner conditions hold.  The
        conservative encoders simply require the inner conditions at every
        sample, which under-approximates the attacker's freedom.
        """
        return self.inner.conditions_at(k, dt)

    def stealth_windows(self, horizon: int) -> list[tuple[int, ...]]:
        """All windows of consecutive samples whose full violation would alarm.

        Returns a list of index tuples; an attack is stealthy w.r.t. this
        monitor iff for each window at least one sample satisfies the inner
        check.
        """
        width = self.dead_zone_samples
        if horizon < width:
            return []
        return [tuple(range(start, start + width)) for start in range(horizon - width + 1)]
