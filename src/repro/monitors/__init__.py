"""Plant-level monitoring constraints (the paper's ``mdc``).

These are the "already in place" sanity checks of an industrial ECU: range
and gradient monitors on individual sensors, relation monitors between
redundant sensors, all wrapped by a dead-zone counter so that only sustained
violations raise an alarm.  Each monitor can both

* evaluate concrete measurement traces (for simulation and FAR studies), and
* describe itself as affine conditions over measurement symbols (consumed by
  the formal attack-synthesis encodings).
"""

from repro.monitors.base import (
    LinearCondition,
    Monitor,
    MonitorReport,
)
from repro.monitors.range_monitor import RangeMonitor
from repro.monitors.gradient_monitor import GradientMonitor
from repro.monitors.relation_monitor import RelationMonitor
from repro.monitors.deadzone import DeadZoneMonitor
from repro.monitors.composite import CompositeMonitor

__all__ = [
    "LinearCondition",
    "Monitor",
    "MonitorReport",
    "RangeMonitor",
    "GradientMonitor",
    "RelationMonitor",
    "DeadZoneMonitor",
    "CompositeMonitor",
]
