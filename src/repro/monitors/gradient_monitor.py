"""Gradient monitor: a sensor value must not change faster than a rate limit."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.monitors.base import LinearCondition, Monitor
from repro.utils.validation import check_positive


@dataclass
class GradientMonitor(Monitor):
    """Checks ``|y[k][channel] - y[k-1][channel]| / dt <= max_rate``.

    The first sample has no predecessor, so the check is vacuously satisfied
    there (matching how ECU gradient monitors initialise).

    The paper's VSC limits: yaw-rate gradient 0.175 rad/s² and lateral
    acceleration gradient 2 m/s³.
    """

    channel: int
    max_rate: float
    name: str = "gradient"

    def __post_init__(self) -> None:
        self.channel = int(self.channel)
        self.max_rate = check_positive("max_rate", self.max_rate)

    def satisfied(self, measurements: np.ndarray, dt: float) -> np.ndarray:
        measurements = np.atleast_2d(np.asarray(measurements, dtype=float))
        values = measurements[:, self.channel]
        result = np.ones(values.shape[0], dtype=bool)
        if values.shape[0] > 1:
            rates = np.abs(np.diff(values)) / float(dt)
            result[1:] = rates <= self.max_rate + 1e-12
        return result

    def conditions_at(self, k: int, dt: float) -> list[LinearCondition]:
        if k == 0:
            return []
        bound = self.max_rate * float(dt)
        return [
            LinearCondition(
                terms=((k, self.channel, 1.0), (k - 1, self.channel, -1.0)),
                lower=-bound,
                upper=bound,
                label=f"{self.name}[y{self.channel}@k={k}]",
            )
        ]
