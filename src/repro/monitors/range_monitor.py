"""Range monitor: a sensor value must stay inside a permissible interval."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.monitors.base import LinearCondition, Monitor
from repro.utils.validation import ValidationError


@dataclass
class RangeMonitor(Monitor):
    """Checks ``low <= y[k][channel] <= high`` at every sampling instance.

    The paper's VSC monitoring system applies this to the yaw rate
    (``|gamma| <= 0.2 rad/s``) and the lateral acceleration
    (``|ay| <= 15 m/s^2``); symmetric ranges are expressed by setting
    ``low = -high``.
    """

    channel: int
    low: float
    high: float
    name: str = "range"

    def __post_init__(self) -> None:
        self.channel = int(self.channel)
        self.low = float(self.low)
        self.high = float(self.high)
        if self.low > self.high:
            raise ValidationError("RangeMonitor requires low <= high")

    @classmethod
    def symmetric(cls, channel: int, magnitude: float, name: str = "range") -> "RangeMonitor":
        """Range monitor for ``|y[channel]| <= magnitude``."""
        magnitude = abs(float(magnitude))
        return cls(channel=channel, low=-magnitude, high=magnitude, name=name)

    def satisfied(self, measurements: np.ndarray, dt: float) -> np.ndarray:
        measurements = np.atleast_2d(np.asarray(measurements, dtype=float))
        values = measurements[:, self.channel]
        return (values >= self.low - 1e-12) & (values <= self.high + 1e-12)

    def conditions_at(self, k: int, dt: float) -> list[LinearCondition]:
        return [
            LinearCondition(
                terms=((k, self.channel, 1.0),),
                lower=self.low,
                upper=self.high,
                label=f"{self.name}[y{self.channel}@k={k}]",
            )
        ]
