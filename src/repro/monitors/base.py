"""Monitor abstractions and the affine-condition intermediate representation.

A monitor is *satisfied* at a sampling instance when the measurement passes
its sanity check; it is *violated* otherwise.  Alarms are a separate concept:
plain monitors alarm on any violation, while a
:class:`~repro.monitors.deadzone.DeadZoneMonitor` alarms only after a run of
consecutive violations.

To let the attack-synthesis backends reason about monitors without coupling
them to a particular solver, every monitor can describe "satisfied at sample
``k``" as a conjunction of :class:`LinearCondition` objects — affine
inequalities over measurement symbols ``y[k][channel]``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import ValidationError


@dataclass(frozen=True)
class LinearCondition:
    """An affine double inequality over measurement symbols.

    Represents ``lower <= sum(coeff * y[sample][channel]) + constant <= upper``
    where the sum ranges over ``terms``.  Either bound may be ``None``
    (meaning unbounded on that side).

    Attributes
    ----------
    terms:
        Tuple of ``(sample_index, channel_index, coefficient)`` triples.
        ``sample_index`` is 0-based within the analysis horizon.
    constant:
        Constant offset added to the linear combination.
    lower, upper:
        Optional bounds.
    label:
        Human-readable description used in reports and solver diagnostics.
    """

    terms: tuple[tuple[int, int, float], ...]
    constant: float = 0.0
    lower: float | None = None
    upper: float | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.lower is None and self.upper is None:
            raise ValidationError("LinearCondition needs at least one bound")
        if self.lower is not None and self.upper is not None and self.lower > self.upper:
            raise ValidationError("LinearCondition lower bound exceeds upper bound")
        terms = tuple((int(k), int(c), float(w)) for k, c, w in self.terms)
        object.__setattr__(self, "terms", terms)

    def evaluate(self, measurements: np.ndarray) -> bool:
        """Check the condition on a concrete ``(T, m)`` measurement matrix."""
        value = self.constant
        for sample, channel, coefficient in self.terms:
            value += coefficient * float(measurements[sample, channel])
        if self.lower is not None and value < self.lower - 1e-12:
            return False
        if self.upper is not None and value > self.upper + 1e-12:
            return False
        return True

    def value(self, measurements: np.ndarray) -> float:
        """The affine expression's value on a concrete measurement matrix."""
        value = self.constant
        for sample, channel, coefficient in self.terms:
            value += coefficient * float(measurements[sample, channel])
        return value


@dataclass
class MonitorReport:
    """Evaluation of a monitor over a whole trace.

    Attributes
    ----------
    satisfied:
        Boolean array, ``satisfied[k]`` True when the check passes at sample ``k``.
    alarms:
        Boolean array, ``alarms[k]`` True when the monitor raises an alarm at
        sample ``k`` (dead-zone semantics applied where relevant).
    name:
        Monitor name.
    details:
        Free-form per-monitor diagnostics.
    """

    satisfied: np.ndarray
    alarms: np.ndarray
    name: str = ""
    details: dict = field(default_factory=dict)

    @property
    def any_alarm(self) -> bool:
        """True when at least one sample raised an alarm."""
        return bool(np.any(self.alarms))

    @property
    def violation_count(self) -> int:
        """Number of samples at which the underlying check failed."""
        return int(np.sum(~self.satisfied))


class Monitor(abc.ABC):
    """Base class for measurement sanity monitors."""

    name: str = "monitor"

    @abc.abstractmethod
    def satisfied(self, measurements: np.ndarray, dt: float) -> np.ndarray:
        """Boolean array of per-sample check results on a ``(T, m)`` trace."""

    @abc.abstractmethod
    def conditions_at(self, k: int, dt: float) -> list[LinearCondition]:
        """Affine conditions equivalent to "satisfied at sample ``k``".

        Conditions may reference earlier samples (gradient monitors reference
        ``k - 1``); for ``k == 0`` such monitors return an empty list, meaning
        the check is vacuously satisfied at the first sample.
        """

    def alarms(self, measurements: np.ndarray, dt: float) -> np.ndarray:
        """Per-sample alarm flags.  Plain monitors alarm on every violation."""
        return ~self.satisfied(measurements, dt)

    def report(self, measurements: np.ndarray, dt: float) -> MonitorReport:
        """Full evaluation of the monitor on one trace."""
        measurements = np.atleast_2d(np.asarray(measurements, dtype=float))
        satisfied = self.satisfied(measurements, dt)
        return MonitorReport(
            satisfied=satisfied,
            alarms=self.alarms(measurements, dt),
            name=self.name,
        )

    def raises_alarm(self, measurements: np.ndarray, dt: float) -> bool:
        """True when the monitor alarms anywhere on the trace."""
        return bool(np.any(self.alarms(measurements, dt)))
