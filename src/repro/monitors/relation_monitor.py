"""Relation monitor: consistency between two redundant sensor channels."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.monitors.base import LinearCondition, Monitor
from repro.utils.validation import check_positive


@dataclass
class RelationMonitor(Monitor):
    """Checks ``|y[k][a] - (gain * y[k][b] + offset)| <= allowed_diff``.

    This models the paper's relation-based monitor: the yaw rate measured by
    the yaw-rate sensor must agree (up to ``allowedDiff``) with the yaw rate
    estimated from the lateral-acceleration sensor, ``gamma_est = ay / v_x``
    (steady-state kinematic relation), i.e. ``gain = 1 / v_x`` and
    ``offset = 0``.
    """

    channel_a: int
    channel_b: int
    gain: float
    allowed_diff: float
    offset: float = 0.0
    name: str = "relation"

    def __post_init__(self) -> None:
        self.channel_a = int(self.channel_a)
        self.channel_b = int(self.channel_b)
        self.gain = float(self.gain)
        self.offset = float(self.offset)
        self.allowed_diff = check_positive("allowed_diff", self.allowed_diff)

    def mismatch(self, measurements: np.ndarray) -> np.ndarray:
        """Signed mismatch ``y[a] - (gain*y[b] + offset)`` per sample."""
        measurements = np.atleast_2d(np.asarray(measurements, dtype=float))
        return (
            measurements[:, self.channel_a]
            - self.gain * measurements[:, self.channel_b]
            - self.offset
        )

    def satisfied(self, measurements: np.ndarray, dt: float) -> np.ndarray:
        return np.abs(self.mismatch(measurements)) <= self.allowed_diff + 1e-12

    def conditions_at(self, k: int, dt: float) -> list[LinearCondition]:
        return [
            LinearCondition(
                terms=((k, self.channel_a, 1.0), (k, self.channel_b, -self.gain)),
                constant=-self.offset,
                lower=-self.allowed_diff,
                upper=self.allowed_diff,
                label=f"{self.name}[y{self.channel_a}~y{self.channel_b}@k={k}]",
            )
        ]
