"""Shared plugin registries for every pluggable component of the library.

Historically each extension point had its own ad-hoc name table (the backend
dict in :mod:`repro.falsification.registry`, the algorithm tuple in
:mod:`repro.core.pipeline`, the hard-wired ``build_*_case_study`` imports).
This module replaces them with one mechanism: a :class:`Registry` per
component kind, populated by ``@register`` decorators at class/function
definition time, with dynamic error messages and introspection helpers.

Eight registries ship with the library:

==================  =============================================  =========================
registry            built-in names                                 registered object
==================  =============================================  =========================
``BACKENDS``        ``lp``, ``smt``, ``optimizer``                 attack-synthesis backend
``SYNTHESIZERS``    ``pivot``, ``stepwise``, ``static``            threshold synthesizer
``DETECTORS``       ``residue``, ``chi-square``, ``cusum``,        residue detector
                    ``online-residue``, ``online-chi-square``,     (offline and online forms)
                    ``online-cusum``
``NOISE_MODELS``    ``zero``, ``gaussian``, ``bounded-uniform``,   noise model
                    ``truncated-gaussian``
``CASE_STUDIES``    ``vsc``, ``trajectory``, ``dcmotor``,          case-study builder
                    ``quadtank``, ``cruise``, ``pendulum``
``ATTACK_TEMPLATES``  ``none``, ``bias``, ``ramp``, ``surge``,     parametric attack template
                    ``geometric``, ``replay``
``SAMPLERS``        ``grid``, ``adaptive-bisection``               design-space sampler
``ENGINES``         ``legacy``, ``fused``                          fleet execution engine
==================  =============================================  =========================

Downstream users extend any of them::

    from repro.registry import CASE_STUDIES

    @CASE_STUDIES.register("my-plant")
    def build_my_plant(horizon: int = 20) -> CaseStudy:
        ...

and every string-accepting entry point (``ExperimentSpec``, ``run_pipeline``,
``get_backend``, ...) resolves the new name immediately.

Built-in entries register themselves when their defining module is imported;
each registry lazily imports its built-in modules on first lookup so the
registries are complete even when only ``repro.registry`` has been imported.
"""

from __future__ import annotations

import importlib
from collections.abc import Iterator

from repro.utils.validation import ValidationError


class RegistryError(ValidationError):
    """Raised on unknown-name lookups and conflicting registrations."""


class Registry:
    """A named mapping from string keys to factories (classes or functions).

    Parameters
    ----------
    kind:
        Human-readable component kind used in error messages (``"backend"``).
    builtin_modules:
        Modules imported lazily on first lookup; importing them must register
        the built-in entries (via :meth:`register` decorators at module top
        level).
    """

    def __init__(self, kind: str, builtin_modules: tuple[str, ...] = ()):
        self.kind = kind
        self._entries: dict[str, object] = {}
        self._builtin_modules = tuple(builtin_modules)
        self._populated = not self._builtin_modules

    # ------------------------------------------------------------------
    def _ensure_populated(self) -> None:
        if self._populated:
            return
        self._populated = True
        for module in self._builtin_modules:
            importlib.import_module(module)

    # ------------------------------------------------------------------
    def register(self, name: str, obj: object | None = None, *, overwrite: bool = False):
        """Register ``obj`` under ``name``; usable directly or as a decorator.

        Re-registering the *same* object under the same name is a no-op;
        registering a different object raises :class:`RegistryError` unless
        ``overwrite=True``.
        """
        if obj is None:

            def decorator(target):
                self.register(name, target, overwrite=overwrite)
                return target

            return decorator

        if not isinstance(name, str) or not name:
            raise RegistryError(f"{self.kind} name must be a non-empty string, got {name!r}")
        existing = self._entries.get(name)
        if existing is not None and existing is not obj and not overwrite:
            raise RegistryError(
                f"{self.kind} {name!r} is already registered ({existing!r}); "
                "pass overwrite=True to replace it"
            )
        self._entries[name] = obj
        return obj

    def unregister(self, name: str) -> object:
        """Remove and return the entry under ``name`` (raises when unknown)."""
        self._ensure_populated()
        if name not in self._entries:
            raise RegistryError(f"unknown {self.kind} {name!r}; nothing to unregister")
        return self._entries.pop(name)

    # ------------------------------------------------------------------
    def get(self, name: str) -> object:
        """The factory registered under ``name``."""
        self._ensure_populated()
        try:
            return self._entries[name]
        except KeyError:
            available = ", ".join(self.available()) or "(none)"
            raise RegistryError(
                f"unknown {self.kind} {name!r}; available: {available}"
            ) from None

    def create(self, name: str, **kwargs):
        """Instantiate/call the factory registered under ``name``."""
        return self.get(name)(**kwargs)

    def available(self) -> list[str]:
        """Sorted names of every registered entry."""
        self._ensure_populated()
        return sorted(self._entries)

    # ------------------------------------------------------------------
    def __contains__(self, name: object) -> bool:
        self._ensure_populated()
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.available())

    def __len__(self) -> int:
        self._ensure_populated()
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {self.available()!r})"


# ----------------------------------------------------------------------
# The library's extension points.
# ----------------------------------------------------------------------
BACKENDS = Registry("backend", ("repro.falsification.registry",))
SYNTHESIZERS = Registry(
    "synthesizer",
    ("repro.core.pivot", "repro.core.stepwise", "repro.core.static_synthesis"),
)
DETECTORS = Registry(
    "detector",
    (
        "repro.detectors.residue",
        "repro.detectors.chi_square",
        "repro.detectors.cusum",
        "repro.runtime.online",
    ),
)
NOISE_MODELS = Registry("noise model", ("repro.noise.models",))
CASE_STUDIES = Registry("case study", ("repro.systems",))
ATTACK_TEMPLATES = Registry("attack template", ("repro.attacks.templates",))
SAMPLERS = Registry("sampler", ("repro.explore.space",))
ENGINES = Registry("engine", ("repro.runtime.kernel.runner",))

REGISTRIES: dict[str, Registry] = {
    "backend": BACKENDS,
    "synthesizer": SYNTHESIZERS,
    "detector": DETECTORS,
    "noise_model": NOISE_MODELS,
    "case_study": CASE_STUDIES,
    "attack_template": ATTACK_TEMPLATES,
    "sampler": SAMPLERS,
    "engine": ENGINES,
}


def get_registry(kind: str) -> Registry:
    """Look up one of the library registries by kind name."""
    try:
        return REGISTRIES[kind]
    except KeyError:
        available = ", ".join(sorted(REGISTRIES))
        raise RegistryError(f"unknown registry kind {kind!r}; available: {available}") from None


def register(kind: str, name: str, obj: object | None = None, *, overwrite: bool = False):
    """Generic registration decorator: ``@register("backend", "my-solver")``."""
    return get_registry(kind).register(name, obj, overwrite=overwrite)


# ----------------------------------------------------------------------
# Introspection helpers (one per registry) and factory conveniences.
# ----------------------------------------------------------------------
def available_backends() -> list[str]:
    """Names of the registered attack-synthesis backends."""
    return BACKENDS.available()


def available_synthesizers() -> list[str]:
    """Names of the registered threshold-synthesis algorithms."""
    return SYNTHESIZERS.available()


def available_detectors() -> list[str]:
    """Names of the registered residue-detector classes."""
    return DETECTORS.available()


def available_noise_models() -> list[str]:
    """Names of the registered noise models."""
    return NOISE_MODELS.available()


def available_case_studies() -> list[str]:
    """Names of the registered case-study builders."""
    return CASE_STUDIES.available()


def available_attack_templates() -> list[str]:
    """Names of the registered parametric attack templates."""
    return ATTACK_TEMPLATES.available()


def available_samplers() -> list[str]:
    """Names of the registered design-space samplers."""
    return SAMPLERS.available()


def available_engines() -> list[str]:
    """Names of the registered fleet execution engines."""
    return ENGINES.available()


def register_sampler(name: str, obj: object | None = None, *, overwrite: bool = False):
    """Register a design-space sampler: ``@register_sampler("my-sampler")``."""
    return SAMPLERS.register(name, obj, overwrite=overwrite)


def get_case_study(name: str, **kwargs):
    """Build the case study registered under ``name`` (kwargs go to its builder)."""
    return CASE_STUDIES.create(name, **kwargs)


def get_noise_model(name: str, **kwargs):
    """Instantiate the noise model registered under ``name``."""
    return NOISE_MODELS.create(name, **kwargs)


def get_detector(name: str, **kwargs):
    """Instantiate the detector class registered under ``name``."""
    return DETECTORS.create(name, **kwargs)


def get_synthesizer(name: str, **kwargs):
    """Instantiate the synthesizer registered under ``name``."""
    return SYNTHESIZERS.create(name, **kwargs)


def get_attack_template(name: str, **kwargs):
    """Instantiate the attack template registered under ``name``."""
    return ATTACK_TEMPLATES.create(name, **kwargs)


def get_sampler(name: str, **kwargs):
    """Instantiate the design-space sampler registered under ``name``."""
    return SAMPLERS.create(name, **kwargs)
