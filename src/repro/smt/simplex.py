"""General simplex for linear real arithmetic feasibility.

Implements the procedure of Dutertre & de Moura ("A fast linear-arithmetic
solver for DPLL(T)", CAV 2006) restricted to what the DPLL(T) loop needs: a
one-shot feasibility check of a conjunction of (possibly strict) linear
inequalities, returning either a satisfying assignment or infeasibility.

Strict inequalities are handled with *delta numbers* ``a + b·δ`` where δ is a
symbolic infinitesimal: ``x < c`` becomes ``x <= c - δ``.  After a feasible
tableau is found, a concrete positive value for δ is chosen small enough that
all original strict constraints hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.smt.linear import LinearExpr
from repro.utils.validation import ValidationError

_EPSILON = 1e-9


@dataclass(frozen=True)
class DeltaNumber:
    """A number of the form ``real + delta_coefficient * δ`` with δ infinitesimal."""

    real: float
    delta: float = 0.0

    def __add__(self, other: "DeltaNumber") -> "DeltaNumber":
        return DeltaNumber(self.real + other.real, self.delta + other.delta)

    def __sub__(self, other: "DeltaNumber") -> "DeltaNumber":
        return DeltaNumber(self.real - other.real, self.delta - other.delta)

    def scale(self, factor: float) -> "DeltaNumber":
        """Multiply by a real scalar."""
        return DeltaNumber(self.real * factor, self.delta * factor)

    def less_than(self, other: "DeltaNumber", tol: float = _EPSILON) -> bool:
        """Lexicographic strict comparison with a small real-part tolerance."""
        if self.real < other.real - tol:
            return True
        if self.real > other.real + tol:
            return False
        return self.delta < other.delta - tol

    def greater_than(self, other: "DeltaNumber", tol: float = _EPSILON) -> bool:
        return other.less_than(self, tol)

    def concretise(self, epsilon: float) -> float:
        """Replace δ by the concrete positive value ``epsilon``."""
        return self.real + self.delta * epsilon

    @classmethod
    def of(cls, real: float, strict_upper: bool = False, strict_lower: bool = False) -> "DeltaNumber":
        """Bound constructor: ``x <= real`` / ``x < real`` / ``x >= real`` / ``x > real``."""
        if strict_upper:
            return cls(real, -1.0)
        if strict_lower:
            return cls(real, 1.0)
        return cls(real, 0.0)


@dataclass(frozen=True)
class LinearConstraint:
    """A constraint ``expression <= 0`` (or ``< 0`` when strict)."""

    expression: LinearExpr
    strict: bool = False
    label: str = ""

    def holds(self, assignment: dict[str, float], tol: float = 1e-7) -> bool:
        """Check the constraint on a concrete assignment."""
        value = self.expression.evaluate(assignment)
        return value < -0.0 if self.strict else value <= tol

    def margin(self, assignment: dict[str, float]) -> float:
        """Slack ``-expression`` (positive when strictly satisfied)."""
        return -self.expression.evaluate(assignment)


@dataclass
class SimplexResult:
    """Outcome of one feasibility check."""

    feasible: bool
    model: dict[str, float] | None = None
    conflict: list[str] = field(default_factory=list)
    iterations: int = 0


class SimplexSolver:
    """One-shot feasibility checker for conjunctions of linear constraints."""

    def __init__(self, max_iterations: int = 100_000):
        self.max_iterations = int(max_iterations)
        self._constraints: list[LinearConstraint] = []

    # ------------------------------------------------------------------
    def add_constraint(self, constraint: LinearConstraint) -> None:
        """Add one constraint to the conjunction."""
        self._constraints.append(constraint)

    def add_expression(self, expression: LinearExpr, strict: bool = False, label: str = "") -> None:
        """Convenience wrapper building the :class:`LinearConstraint` in place."""
        self.add_constraint(LinearConstraint(expression=expression, strict=strict, label=label))

    def clear(self) -> None:
        """Remove all constraints."""
        self._constraints = []

    @property
    def constraints(self) -> list[LinearConstraint]:
        """The current conjunction (read-only view)."""
        return list(self._constraints)

    # ------------------------------------------------------------------
    def check(self) -> SimplexResult:
        """Decide feasibility of the current conjunction.

        Returns a :class:`SimplexResult`; when feasible, ``model`` maps every
        variable appearing in the constraints to a satisfying real value.
        """
        variables: list[str] = sorted(
            {name for constraint in self._constraints for name in constraint.expression.variables()}
        )
        if not self._constraints:
            return SimplexResult(feasible=True, model={})
        if not variables:
            # Ground constraints: just evaluate the constants (with a small
            # numerical tolerance on non-strict comparisons).
            for constraint in self._constraints:
                value = constraint.expression.constant
                violated = value > _EPSILON if not constraint.strict else value >= 0.0
                if violated:
                    return SimplexResult(feasible=False, conflict=[constraint.label])
            return SimplexResult(feasible=True, model={})

        # --- Build the tableau ------------------------------------------------
        # Structural variables first, then one slack per multi-variable
        # constraint.  Single-variable constraints become direct bounds.
        lower: dict[str, DeltaNumber | None] = {name: None for name in variables}
        upper: dict[str, DeltaNumber | None] = {name: None for name in variables}
        bound_label_lower: dict[str, str] = {}
        bound_label_upper: dict[str, str] = {}

        rows: dict[str, dict[str, float]] = {}
        slack_index = 0

        def tighten_upper(name: str, bound: DeltaNumber, label: str) -> None:
            current = upper[name]
            if current is None or bound.less_than(current, tol=0.0):
                upper[name] = bound
                bound_label_upper[name] = label

        def tighten_lower(name: str, bound: DeltaNumber, label: str) -> None:
            current = lower[name]
            if current is None or bound.greater_than(current, tol=0.0):
                lower[name] = bound
                bound_label_lower[name] = label

        for constraint in self._constraints:
            coefficients = constraint.expression.coefficients
            constant = constraint.expression.constant
            label = constraint.label or repr(constraint.expression)
            if len(coefficients) == 1:
                ((name, coefficient),) = coefficients.items()
                # coefficient * name + constant (<|<=) 0
                bound_value = -constant / coefficient
                if coefficient > 0:
                    tighten_upper(
                        name, DeltaNumber.of(bound_value, strict_upper=constraint.strict), label
                    )
                else:
                    tighten_lower(
                        name, DeltaNumber.of(bound_value, strict_lower=constraint.strict), label
                    )
                continue
            slack_name = f"__slack_{slack_index}"
            slack_index += 1
            rows[slack_name] = dict(coefficients)
            lower[slack_name] = None
            upper[slack_name] = None
            bound_label_upper[slack_name] = label
            tighten_upper(
                slack_name, DeltaNumber.of(-constant, strict_upper=constraint.strict), label
            )

        all_variables = variables + list(rows.keys())
        order = {name: index for index, name in enumerate(all_variables)}

        basic = set(rows.keys())
        assignment: dict[str, DeltaNumber] = {}
        for name in variables:
            value = DeltaNumber(0.0, 0.0)
            if lower[name] is not None and value.less_than(lower[name], tol=0.0):
                value = lower[name]
            if upper[name] is not None and value.greater_than(upper[name], tol=0.0):
                value = upper[name]
            assignment[name] = value
        for slack_name, row in rows.items():
            assignment[slack_name] = _row_value(row, assignment)

        # Quick infeasibility from contradictory direct bounds.
        for name in all_variables:
            if (
                lower[name] is not None
                and upper[name] is not None
                and upper[name].less_than(lower[name], tol=0.0)
            ):
                return SimplexResult(
                    feasible=False,
                    conflict=[bound_label_lower.get(name, ""), bound_label_upper.get(name, "")],
                )

        # --- Main simplex loop ------------------------------------------------
        iterations = 0
        while True:
            iterations += 1
            if iterations > self.max_iterations:
                raise ValidationError("simplex iteration limit exceeded")

            violated_name = None
            needs_increase = False
            for name in sorted(basic, key=lambda v: order[v]):
                value = assignment[name]
                if lower[name] is not None and value.less_than(lower[name]):
                    violated_name = name
                    needs_increase = True
                    break
                if upper[name] is not None and value.greater_than(upper[name]):
                    violated_name = name
                    needs_increase = False
                    break
            if violated_name is None:
                model = self._concretise(assignment, variables)
                return SimplexResult(feasible=True, model=model, iterations=iterations)

            row = rows[violated_name]
            pivot_name = None
            for name in sorted(row.keys(), key=lambda v: order[v]):
                coefficient = row[name]
                if abs(coefficient) < 1e-12:
                    continue
                value = assignment[name]
                if needs_increase:
                    can_move = (
                        coefficient > 0
                        and (upper[name] is None or value.less_than(upper[name]))
                    ) or (
                        coefficient < 0
                        and (lower[name] is None or value.greater_than(lower[name]))
                    )
                else:
                    can_move = (
                        coefficient > 0
                        and (lower[name] is None or value.greater_than(lower[name]))
                    ) or (
                        coefficient < 0
                        and (upper[name] is None or value.less_than(upper[name]))
                    )
                if can_move:
                    pivot_name = name
                    break

            if pivot_name is None:
                conflict = sorted(
                    {bound_label_lower.get(violated_name, ""), bound_label_upper.get(violated_name, "")}
                    | {bound_label_lower.get(n, "") for n in row}
                    | {bound_label_upper.get(n, "") for n in row}
                )
                conflict = [c for c in conflict if c]
                return SimplexResult(feasible=False, conflict=conflict, iterations=iterations)

            target = lower[violated_name] if needs_increase else upper[violated_name]
            _pivot_and_update(rows, assignment, basic, violated_name, pivot_name, target)

    # ------------------------------------------------------------------
    def _concretise(
        self, assignment: dict[str, DeltaNumber], variables: list[str]
    ) -> dict[str, float]:
        """Choose a concrete δ making every original constraint hold."""
        for exponent in range(3, 15):
            epsilon = 10.0 ** (-exponent)
            model = {name: assignment[name].concretise(epsilon) for name in variables}
            if all(constraint.holds(model) for constraint in self._constraints):
                return model
        # Fall back to the real parts (valid when no strict constraint is tight).
        return {name: assignment[name].real for name in variables}


def _row_value(row: dict[str, float], assignment: dict[str, DeltaNumber]) -> DeltaNumber:
    total = DeltaNumber(0.0, 0.0)
    for name, coefficient in row.items():
        total = total + assignment[name].scale(coefficient)
    return total


def _pivot_and_update(
    rows: dict[str, dict[str, float]],
    assignment: dict[str, DeltaNumber],
    basic: set[str],
    leaving: str,
    entering: str,
    target: DeltaNumber,
) -> None:
    """Pivot ``entering`` into the basis replacing ``leaving`` and update the assignment."""
    row = rows[leaving]
    coefficient = row[entering]
    theta = (target - assignment[leaving]).scale(1.0 / coefficient)

    assignment[leaving] = target
    assignment[entering] = assignment[entering] + theta
    for name in basic:
        if name in (leaving,):
            continue
        other_row = rows[name]
        if entering in other_row and abs(other_row[entering]) > 1e-15:
            assignment[name] = assignment[name] + theta.scale(other_row[entering])

    # --- Rewrite the tableau --------------------------------------------------
    # leaving = sum(row[j] * j)  =>  entering = (leaving - sum_{j != entering}) / coeff
    new_row = {leaving: 1.0 / coefficient}
    for name, value in row.items():
        if name == entering:
            continue
        new_row[name] = -value / coefficient
    del rows[leaving]
    basic.discard(leaving)
    rows[entering] = new_row
    basic.add(entering)

    # Substitute the entering variable out of every other row.
    for name in list(rows.keys()):
        if name == entering:
            continue
        other_row = rows[name]
        if entering not in other_row:
            continue
        factor = other_row.pop(entering)
        if abs(factor) < 1e-15:
            continue
        for sub_name, sub_value in new_row.items():
            other_row[sub_name] = other_row.get(sub_name, 0.0) + factor * sub_value
            if abs(other_row[sub_name]) < 1e-15:
                del other_row[sub_name]
