"""DPLL(T) search loop.

A deliberately compact SAT search (unit propagation + chronological
backtracking over decisions) combined with the simplex theory solver: every
time propagation completes, the conjunction of currently asserted arithmetic
atoms is checked for feasibility, pruning theory-inconsistent branches early.

The encodings produced by the attack-synthesis module are conjunction-heavy
with only a handful of disjunctions, so this lightweight search is adequate;
it is nevertheless a complete decision procedure for QF-LRA formulas produced
by :mod:`repro.smt.cnf`.
"""

from __future__ import annotations

from repro.obs.clock import Stopwatch
from dataclasses import dataclass, field

from repro.smt.cnf import CNF
from repro.smt.simplex import LinearConstraint, SimplexSolver
from repro.utils.results import SolveStatus


@dataclass
class DPLLResult:
    """Outcome of a DPLL(T) run."""

    status: SolveStatus
    bool_assignment: dict[int, bool] = field(default_factory=dict)
    theory_model: dict[str, float] = field(default_factory=dict)
    decisions: int = 0
    propagations: int = 0
    theory_checks: int = 0
    elapsed: float = 0.0


class DPLLSolver:
    """DPLL(T) over a CNF instance with arithmetic atoms."""

    def __init__(
        self,
        cnf: CNF,
        theory_check: str = "eager",
        time_budget: float | None = None,
        max_decisions: int = 1_000_000,
    ):
        """
        Parameters
        ----------
        cnf:
            The CNF instance (with the atom map) to solve.
        theory_check:
            ``"eager"`` checks the theory after every completed propagation;
            ``"lazy"`` only at complete propositional assignments.
        time_budget:
            Optional wall-clock budget in seconds; exceeding it returns
            ``UNKNOWN`` (mirrors the per-call SMT timeout in the paper).
        max_decisions:
            Hard cap on the number of decisions (safety net).
        """
        self.cnf = cnf
        self.theory_check = theory_check
        self.time_budget = time_budget
        self.max_decisions = int(max_decisions)

    # ------------------------------------------------------------------
    def solve(self) -> DPLLResult:
        """Run the search to completion (or budget exhaustion)."""
        start = Stopwatch()
        clauses = [tuple(clause) for clause in self.cnf.clauses]
        if any(len(clause) == 0 for clause in clauses):
            return DPLLResult(status=SolveStatus.UNSAT, elapsed=start.elapsed())

        n_vars = self.cnf.variable_count
        assignment: dict[int, bool] = {}
        # Trail entries: (variable, value, is_decision)
        trail: list[tuple[int, bool, bool]] = []
        decisions = 0
        propagations = 0
        theory_checks = 0
        last_theory_model: dict[str, float] = {}

        def value_of(literal: int) -> bool | None:
            variable = abs(literal)
            if variable not in assignment:
                return None
            value = assignment[variable]
            return value if literal > 0 else not value

        def assign(literal: int, is_decision: bool) -> None:
            variable = abs(literal)
            assignment[variable] = literal > 0
            trail.append((variable, literal > 0, is_decision))

        def unit_propagate() -> bool:
            """Propagate until fixpoint; False on propositional conflict."""
            nonlocal propagations
            changed = True
            while changed:
                changed = False
                for clause in clauses:
                    unassigned_literal = None
                    unassigned_count = 0
                    satisfied = False
                    for literal in clause:
                        value = value_of(literal)
                        if value is True:
                            satisfied = True
                            break
                        if value is None:
                            unassigned_count += 1
                            unassigned_literal = literal
                    if satisfied:
                        continue
                    if unassigned_count == 0:
                        return False
                    if unassigned_count == 1:
                        assign(unassigned_literal, is_decision=False)
                        propagations += 1
                        changed = True
            return True

        def asserted_theory_constraints() -> list[LinearConstraint]:
            constraints = []
            for variable, atom in self.cnf.atom_of_variable.items():
                if variable not in assignment:
                    continue
                asserted_atom = atom if assignment[variable] else atom.negated()
                constraints.append(
                    LinearConstraint(
                        expression=asserted_atom.expression,
                        strict=asserted_atom.strict,
                        label=f"atom_{variable}",
                    )
                )
            return constraints

        def theory_feasible() -> tuple[bool, dict[str, float]]:
            nonlocal theory_checks
            theory_checks += 1
            simplex = SimplexSolver()
            for constraint in asserted_theory_constraints():
                simplex.add_constraint(constraint)
            result = simplex.check()
            return result.feasible, (result.model or {})

        def backtrack() -> bool:
            """Undo up to (and including) the most recent untried decision; flip it.

            Returns False when no decision remains (search exhausted).
            """
            while trail:
                variable, value, is_decision = trail.pop()
                del assignment[variable]
                if is_decision:
                    # Re-assert the flipped value as a non-decision (it has no
                    # alternative left).
                    assign(-variable if value else variable, is_decision=False)
                    return True
            return False

        # ------------------------------------------------------------------
        while True:
            if start.exceeded(self.time_budget):
                return DPLLResult(
                    status=SolveStatus.UNKNOWN,
                    decisions=decisions,
                    propagations=propagations,
                    theory_checks=theory_checks,
                    elapsed=start.elapsed(),
                )

            if not unit_propagate():
                if not backtrack():
                    return DPLLResult(
                        status=SolveStatus.UNSAT,
                        decisions=decisions,
                        propagations=propagations,
                        theory_checks=theory_checks,
                        elapsed=start.elapsed(),
                    )
                continue

            if self.theory_check == "eager" or len(assignment) == n_vars:
                feasible, model = theory_feasible()
                if not feasible:
                    if not backtrack():
                        return DPLLResult(
                            status=SolveStatus.UNSAT,
                            decisions=decisions,
                            propagations=propagations,
                            theory_checks=theory_checks,
                            elapsed=start.elapsed(),
                        )
                    continue
                last_theory_model = model

            if len(assignment) == n_vars:
                return DPLLResult(
                    status=SolveStatus.SAT,
                    bool_assignment=dict(assignment),
                    theory_model=last_theory_model,
                    decisions=decisions,
                    propagations=propagations,
                    theory_checks=theory_checks,
                    elapsed=start.elapsed(),
                )

            # Decide: pick the lowest-index unassigned variable, prefer True.
            decisions += 1
            if decisions > self.max_decisions:
                return DPLLResult(
                    status=SolveStatus.UNKNOWN,
                    decisions=decisions,
                    propagations=propagations,
                    theory_checks=theory_checks,
                    elapsed=start.elapsed(),
                )
            for variable in range(1, n_vars + 1):
                if variable not in assignment:
                    assign(variable, is_decision=True)
                    break
