"""Boolean formulas over linear-arithmetic atoms.

Atoms are canonicalised to one of two forms:

* ``expr <= 0``  (non-strict), or
* ``expr < 0``   (strict),

where ``expr`` is a :class:`~repro.smt.linear.LinearExpr`.  Equalities are
expanded into the conjunction of two non-strict atoms at construction time so
that the negation of every atom is again a single atom — a property the
DPLL(T) loop relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.smt.linear import LinearExpr
from repro.utils.validation import ValidationError


class Formula:
    """Base class of all Boolean formula nodes."""

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)

    def implies(self, other: "Formula") -> "Formula":
        """Material implication ``self -> other``."""
        return Implies(self, other)

    # Subclasses override.
    def evaluate(self, real_assignment: dict[str, float], bool_assignment: dict[str, bool] | None = None) -> bool:
        """Evaluate under a concrete assignment of reals (and Booleans)."""
        raise NotImplementedError

    def atoms(self) -> list["Atom"]:
        """All arithmetic atoms appearing in the formula (with repetition removed)."""
        seen: dict[tuple, Atom] = {}
        self._collect_atoms(seen)
        return list(seen.values())

    def bool_vars(self) -> set[str]:
        """Names of free Boolean variables."""
        names: set[str] = set()
        self._collect_bools(names)
        return names

    def real_vars(self) -> set[str]:
        """Names of real variables appearing in any atom."""
        names: set[str] = set()
        for atom in self.atoms():
            names |= atom.expression.variables()
        return names

    def _collect_atoms(self, seen: dict) -> None:
        raise NotImplementedError

    def _collect_bools(self, names: set[str]) -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class Atom(Formula):
    """A linear inequality atom ``expression <= 0`` or ``expression < 0``."""

    expression: LinearExpr
    strict: bool = False

    def negated(self) -> "Atom":
        """The complementary atom.

        ``not (e <= 0)`` is ``-e < 0`` and ``not (e < 0)`` is ``-e <= 0``.
        """
        return Atom(expression=-self.expression, strict=not self.strict)

    def evaluate(self, real_assignment, bool_assignment=None) -> bool:
        value = self.expression.evaluate(real_assignment)
        return value < 0.0 if self.strict else value <= 1e-12

    def key(self) -> tuple:
        """Canonical hashable identity used for deduplication."""
        return (self.expression.canonical_key(), self.strict)

    def _collect_atoms(self, seen: dict) -> None:
        seen.setdefault(self.key(), self)

    def _collect_bools(self, names: set[str]) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        op = "<" if self.strict else "<="
        return f"({self.expression!r} {op} 0)"


@dataclass(frozen=True)
class BoolVar(Formula):
    """A free Boolean variable."""

    name: str

    def evaluate(self, real_assignment, bool_assignment=None) -> bool:
        if not bool_assignment or self.name not in bool_assignment:
            raise ValidationError(f"no value for Boolean variable {self.name!r}")
        return bool(bool_assignment[self.name])

    def _collect_atoms(self, seen: dict) -> None:
        return None

    def _collect_bools(self, names: set[str]) -> None:
        names.add(self.name)


@dataclass(frozen=True)
class BoolConst(Formula):
    """The constants True / False."""

    value: bool

    def evaluate(self, real_assignment, bool_assignment=None) -> bool:
        return self.value

    def _collect_atoms(self, seen: dict) -> None:
        return None

    def _collect_bools(self, names: set[str]) -> None:
        return None


TRUE = BoolConst(True)
FALSE = BoolConst(False)


@dataclass(frozen=True)
class Not(Formula):
    """Logical negation."""

    operand: Formula

    def evaluate(self, real_assignment, bool_assignment=None) -> bool:
        return not self.operand.evaluate(real_assignment, bool_assignment)

    def _collect_atoms(self, seen: dict) -> None:
        self.operand._collect_atoms(seen)

    def _collect_bools(self, names: set[str]) -> None:
        self.operand._collect_bools(names)


class _NaryFormula(Formula):
    """Shared machinery of And/Or (flattening n-ary connectives)."""

    def __init__(self, *operands: Formula):
        flattened: list[Formula] = []
        for operand in operands:
            if operand is None:
                continue
            if isinstance(operand, type(self)):
                flattened.extend(operand.operands)
            elif isinstance(operand, Formula):
                flattened.append(operand)
            else:
                raise ValidationError(f"{operand!r} is not a Formula")
        self.operands: tuple[Formula, ...] = tuple(flattened)

    def _collect_atoms(self, seen: dict) -> None:
        for operand in self.operands:
            operand._collect_atoms(seen)

    def _collect_bools(self, names: set[str]) -> None:
        for operand in self.operands:
            operand._collect_bools(names)


class And(_NaryFormula):
    """N-ary conjunction (empty conjunction is True)."""

    def evaluate(self, real_assignment, bool_assignment=None) -> bool:
        return all(op.evaluate(real_assignment, bool_assignment) for op in self.operands)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "And(" + ", ".join(repr(op) for op in self.operands) + ")"


class Or(_NaryFormula):
    """N-ary disjunction (empty disjunction is False)."""

    def evaluate(self, real_assignment, bool_assignment=None) -> bool:
        return any(op.evaluate(real_assignment, bool_assignment) for op in self.operands)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Or(" + ", ".join(repr(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Implies(Formula):
    """Material implication ``antecedent -> consequent``."""

    antecedent: Formula
    consequent: Formula

    def evaluate(self, real_assignment, bool_assignment=None) -> bool:
        if not self.antecedent.evaluate(real_assignment, bool_assignment):
            return True
        return self.consequent.evaluate(real_assignment, bool_assignment)

    def _collect_atoms(self, seen: dict) -> None:
        self.antecedent._collect_atoms(seen)
        self.consequent._collect_atoms(seen)

    def _collect_bools(self, names: set[str]) -> None:
        self.antecedent._collect_bools(names)
        self.consequent._collect_bools(names)


# ----------------------------------------------------------------------
# Atom constructors
# ----------------------------------------------------------------------
def le(left, right) -> Atom:
    """The atom ``left <= right``."""
    expression = LinearExpr.coerce(left) - LinearExpr.coerce(right)
    return Atom(expression=expression, strict=False)


def lt(left, right) -> Atom:
    """The atom ``left < right``."""
    expression = LinearExpr.coerce(left) - LinearExpr.coerce(right)
    return Atom(expression=expression, strict=True)


def ge(left, right) -> Atom:
    """The atom ``left >= right`` (canonicalised as ``right - left <= 0``)."""
    return le(right, left)


def gt(left, right) -> Atom:
    """The atom ``left > right`` (canonicalised as ``right - left < 0``)."""
    return lt(right, left)


def eq(left, right) -> Formula:
    """Equality, expanded to ``left <= right AND right <= left``."""
    return And(le(left, right), le(right, left))


def between(expression, lower: float | None, upper: float | None, strict: bool = False) -> Formula:
    """``lower <= expression <= upper`` with optional one-sided bounds.

    With ``strict=True`` the comparisons become strict.
    """
    if lower is None and upper is None:
        raise ValidationError("between() needs at least one bound")
    parts: list[Formula] = []
    if lower is not None:
        parts.append(gt(expression, lower) if strict else ge(expression, lower))
    if upper is not None:
        parts.append(lt(expression, upper) if strict else le(expression, upper))
    return And(*parts) if len(parts) > 1 else parts[0]
