"""Tseitin conversion of formulas to CNF.

The converter assigns a propositional variable to every arithmetic atom and
to every internal connective node, producing an equisatisfiable CNF over
integer literals (positive integer = variable asserted true, negative =
false).  The mapping from propositional variables back to arithmetic atoms is
returned so the DPLL(T) loop can hand asserted atoms to the theory solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.smt.expr import (
    And,
    Atom,
    BoolConst,
    BoolVar,
    Formula,
    Implies,
    Not,
    Or,
)
from repro.utils.validation import ValidationError

Clause = tuple[int, ...]


@dataclass
class CNF:
    """A CNF instance produced by Tseitin conversion.

    Attributes
    ----------
    clauses:
        List of clauses; each clause is a tuple of non-zero integer literals.
    atom_of_variable:
        Maps a propositional variable index to the arithmetic
        :class:`~repro.smt.expr.Atom` it represents (absent for auxiliary
        Tseitin variables and free Boolean variables).
    bool_name_of_variable:
        Maps a propositional variable index to the name of the free Boolean
        variable it represents, when applicable.
    variable_count:
        Total number of propositional variables allocated.
    """

    clauses: list[Clause] = field(default_factory=list)
    atom_of_variable: dict[int, Atom] = field(default_factory=dict)
    bool_name_of_variable: dict[int, str] = field(default_factory=dict)
    variable_count: int = 0

    def theory_variables(self) -> list[int]:
        """Propositional variables backed by arithmetic atoms."""
        return sorted(self.atom_of_variable)


class TseitinConverter:
    """Stateful converter accumulating clauses for a conjunction of formulas."""

    def __init__(self) -> None:
        self._cnf = CNF()
        self._atom_cache: dict[tuple, int] = {}
        self._bool_cache: dict[str, int] = {}

    # ------------------------------------------------------------------
    def _new_variable(self) -> int:
        self._cnf.variable_count += 1
        return self._cnf.variable_count

    def _variable_for_atom(self, atom: Atom) -> int:
        key = atom.key()
        if key in self._atom_cache:
            return self._atom_cache[key]
        negated_key = atom.negated().key()
        if negated_key in self._atom_cache:
            # Reuse the complementary atom's variable with opposite phase by
            # registering this atom as its own variable anyway: sharing phases
            # across complementary atoms would complicate the theory mapping,
            # so we simply allocate a fresh variable (the theory solver keeps
            # them consistent).
            pass
        variable = self._new_variable()
        self._atom_cache[key] = variable
        self._cnf.atom_of_variable[variable] = atom
        return variable

    def _variable_for_bool(self, name: str) -> int:
        if name in self._bool_cache:
            return self._bool_cache[name]
        variable = self._new_variable()
        self._bool_cache[name] = variable
        self._cnf.bool_name_of_variable[variable] = name
        return variable

    # ------------------------------------------------------------------
    def _encode(self, formula: Formula) -> int:
        """Return a literal equivalent to ``formula`` (adding defining clauses)."""
        if isinstance(formula, Atom):
            return self._variable_for_atom(formula)
        if isinstance(formula, BoolVar):
            return self._variable_for_bool(formula.name)
        if isinstance(formula, BoolConst):
            variable = self._new_variable()
            self._cnf.clauses.append((variable,) if formula.value else (-variable,))
            return variable
        if isinstance(formula, Not):
            return -self._encode(formula.operand)
        if isinstance(formula, Implies):
            return self._encode(Or(Not(formula.antecedent), formula.consequent))
        if isinstance(formula, And):
            if not formula.operands:
                return self._encode(BoolConst(True))
            literals = [self._encode(op) for op in formula.operands]
            output = self._new_variable()
            # output -> each literal
            for literal in literals:
                self._cnf.clauses.append((-output, literal))
            # all literals -> output
            self._cnf.clauses.append(tuple(-lit for lit in literals) + (output,))
            return output
        if isinstance(formula, Or):
            if not formula.operands:
                return self._encode(BoolConst(False))
            literals = [self._encode(op) for op in formula.operands]
            output = self._new_variable()
            # each literal -> output
            for literal in literals:
                self._cnf.clauses.append((-literal, output))
            # output -> some literal
            self._cnf.clauses.append((-output,) + tuple(literals))
            return output
        raise ValidationError(f"cannot convert {type(formula).__name__} to CNF")

    # ------------------------------------------------------------------
    def assert_formula(self, formula: Formula) -> None:
        """Add ``formula`` as a top-level assertion.

        Top-level conjunctions are split so that their conjuncts become unit
        assertions directly (keeps the CNF small and propagation strong).
        """
        if isinstance(formula, And):
            for operand in formula.operands:
                self.assert_formula(operand)
            return
        if isinstance(formula, BoolConst):
            if formula.value:
                return
            # Assert falsity: add the empty clause.
            self._cnf.clauses.append(())
            return
        literal = self._encode(formula)
        self._cnf.clauses.append((literal,))

    def result(self) -> CNF:
        """The accumulated CNF instance."""
        return self._cnf


def to_cnf(formulas) -> CNF:
    """Convert an iterable of assertions to a single CNF instance."""
    converter = TseitinConverter()
    for formula in formulas:
        converter.assert_formula(formula)
    return converter.result()
