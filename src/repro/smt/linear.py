"""Linear expressions over named real variables.

The solver works with the quantifier-free linear real arithmetic fragment, so
arithmetic is kept canonical from the start: every expression is a
:class:`LinearExpr` — a mapping from variable names to coefficients plus a
constant.  :class:`RealVar` is a lightweight handle that builds such
expressions through the usual Python operators.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import ValidationError


class LinearExpr:
    """An affine expression ``sum(coeff_i * var_i) + constant``.

    Instances are immutable; all operators return new expressions.
    Coefficients with magnitude below ``1e-15`` are dropped to keep the
    representation canonical.
    """

    __slots__ = ("coefficients", "constant")

    def __init__(self, coefficients: dict[str, float] | None = None, constant: float = 0.0):
        cleaned: dict[str, float] = {}
        if coefficients:
            for name, value in coefficients.items():
                value = float(value)
                if abs(value) > 1e-15:
                    cleaned[str(name)] = value
        self.coefficients = cleaned
        self.constant = float(constant)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_constant(cls, value: float) -> "LinearExpr":
        """The constant expression ``value``."""
        return cls({}, float(value))

    @classmethod
    def from_variable(cls, name: str, coefficient: float = 1.0) -> "LinearExpr":
        """The expression ``coefficient * name``."""
        return cls({str(name): float(coefficient)}, 0.0)

    @classmethod
    def coerce(cls, value) -> "LinearExpr":
        """Coerce a number, :class:`RealVar` or :class:`LinearExpr` to a LinearExpr."""
        if isinstance(value, LinearExpr):
            return value
        if isinstance(value, RealVar):
            return cls.from_variable(value.name)
        if isinstance(value, (int, float)):
            return cls.from_constant(float(value))
        raise ValidationError(f"cannot interpret {value!r} as a linear expression")

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def is_constant(self) -> bool:
        """True when no variable appears."""
        return not self.coefficients

    def variables(self) -> set[str]:
        """Names of the variables appearing with non-zero coefficient."""
        return set(self.coefficients)

    def coefficient(self, name: str) -> float:
        """Coefficient of ``name`` (0.0 when absent)."""
        return self.coefficients.get(str(name), 0.0)

    def evaluate(self, assignment: dict[str, float]) -> float:
        """Value of the expression under a complete variable assignment."""
        total = self.constant
        for name, coefficient in self.coefficients.items():
            if name not in assignment:
                raise ValidationError(f"assignment is missing variable {name!r}")
            total += coefficient * float(assignment[name])
        return total

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "LinearExpr":
        other = LinearExpr.coerce(other)
        coefficients = dict(self.coefficients)
        for name, value in other.coefficients.items():
            coefficients[name] = coefficients.get(name, 0.0) + value
        return LinearExpr(coefficients, self.constant + other.constant)

    def __radd__(self, other) -> "LinearExpr":
        return self.__add__(other)

    def __neg__(self) -> "LinearExpr":
        return LinearExpr(
            {name: -value for name, value in self.coefficients.items()}, -self.constant
        )

    def __sub__(self, other) -> "LinearExpr":
        return self.__add__(-LinearExpr.coerce(other))

    def __rsub__(self, other) -> "LinearExpr":
        return LinearExpr.coerce(other).__sub__(self)

    def __mul__(self, scalar) -> "LinearExpr":
        if not isinstance(scalar, (int, float)):
            raise ValidationError("LinearExpr can only be multiplied by a scalar")
        scalar = float(scalar)
        return LinearExpr(
            {name: value * scalar for name, value in self.coefficients.items()},
            self.constant * scalar,
        )

    def __rmul__(self, scalar) -> "LinearExpr":
        return self.__mul__(scalar)

    def __truediv__(self, scalar) -> "LinearExpr":
        if not isinstance(scalar, (int, float)) or scalar == 0:
            raise ValidationError("LinearExpr can only be divided by a non-zero scalar")
        return self.__mul__(1.0 / float(scalar))

    # ------------------------------------------------------------------
    # comparisons build atoms lazily (import inside to avoid cycles)
    # ------------------------------------------------------------------
    def __le__(self, other):
        from repro.smt.expr import le

        return le(self, other)

    def __lt__(self, other):
        from repro.smt.expr import lt

        return lt(self, other)

    def __ge__(self, other):
        from repro.smt.expr import ge

        return ge(self, other)

    def __gt__(self, other):
        from repro.smt.expr import gt

        return gt(self, other)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"{value:+g}*{name}" for name, value in sorted(self.coefficients.items())]
        parts.append(f"{self.constant:+g}")
        return " ".join(parts)

    def canonical_key(self) -> tuple:
        """Hashable canonical form used for atom deduplication."""
        items = tuple(sorted((name, round(value, 12)) for name, value in self.coefficients.items()))
        return items, round(self.constant, 12)


@dataclass(frozen=True)
class RealVar:
    """A named real-valued SMT variable."""

    name: str

    def to_linear(self) -> LinearExpr:
        """The expression ``1.0 * self``."""
        return LinearExpr.from_variable(self.name)

    # arithmetic delegates to LinearExpr
    def __add__(self, other):
        return self.to_linear() + other

    def __radd__(self, other):
        return self.to_linear() + other

    def __sub__(self, other):
        return self.to_linear() - other

    def __rsub__(self, other):
        return LinearExpr.coerce(other) - self.to_linear()

    def __neg__(self):
        return -self.to_linear()

    def __mul__(self, scalar):
        return self.to_linear() * scalar

    def __rmul__(self, scalar):
        return self.to_linear() * scalar

    def __truediv__(self, scalar):
        return self.to_linear() / scalar

    def __le__(self, other):
        return self.to_linear() <= other

    def __lt__(self, other):
        return self.to_linear() < other

    def __ge__(self, other):
        return self.to_linear() >= other

    def __gt__(self, other):
        return self.to_linear() > other
