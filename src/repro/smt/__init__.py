"""A small SMT solver for quantifier-free linear real arithmetic (QF-LRA).

The paper discharges its attack-synthesis queries to Z3; that solver is not
available in this environment, so this package provides a from-scratch
substitute sufficient for the fragment the encodings actually use:

* :mod:`repro.smt.linear` — linear expressions over named real variables,
* :mod:`repro.smt.expr` — Boolean formulas whose atoms are linear
  (non-strict or strict) inequalities,
* :mod:`repro.smt.cnf` — Tseitin conversion to CNF,
* :mod:`repro.smt.simplex` — a general-simplex feasibility checker with
  delta-rational handling of strict inequalities (Dutertre & de Moura),
* :mod:`repro.smt.dpll` — a DPLL(T) search loop combining the SAT core with
  the simplex theory solver,
* :mod:`repro.smt.solver` — the user-facing :class:`Solver` facade with
  ``add`` / ``check`` / ``model``.
"""

from repro.smt.linear import LinearExpr, RealVar
from repro.smt.expr import (
    Formula,
    Atom,
    BoolVar,
    BoolConst,
    Not,
    And,
    Or,
    Implies,
    TRUE,
    FALSE,
    le,
    lt,
    ge,
    gt,
    eq,
    between,
)
from repro.smt.simplex import SimplexSolver, LinearConstraint, DeltaNumber
from repro.smt.solver import Solver, SolverResult
from repro.utils.results import SolveStatus

__all__ = [
    "LinearExpr",
    "RealVar",
    "Formula",
    "Atom",
    "BoolVar",
    "BoolConst",
    "Not",
    "And",
    "Or",
    "Implies",
    "TRUE",
    "FALSE",
    "le",
    "lt",
    "ge",
    "gt",
    "eq",
    "between",
    "SimplexSolver",
    "LinearConstraint",
    "DeltaNumber",
    "Solver",
    "SolverResult",
    "SolveStatus",
]
