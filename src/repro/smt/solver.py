"""User-facing SMT solver facade (``add`` / ``check`` / ``model``).

This mirrors the small subset of the Z3 python API that the attack-synthesis
code needs: assert formulas, ask for satisfiability, and read real-variable
values out of the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.smt.cnf import to_cnf
from repro.smt.dpll import DPLLSolver
from repro.smt.expr import Formula
from repro.smt.linear import RealVar
from repro.utils.results import SolveStatus
from repro.utils.validation import ValidationError


@dataclass
class SolverResult:
    """Result of a :meth:`Solver.check` call."""

    status: SolveStatus
    real_model: dict[str, float] = field(default_factory=dict)
    bool_model: dict[str, bool] = field(default_factory=dict)
    statistics: dict = field(default_factory=dict)

    @property
    def is_sat(self) -> bool:
        """True when a model was found."""
        return self.status is SolveStatus.SAT

    def value(self, variable, default: float = 0.0) -> float:
        """Value of a real variable in the model (0.0 when unconstrained)."""
        name = variable.name if isinstance(variable, RealVar) else str(variable)
        return float(self.real_model.get(name, default))


class Solver:
    """Incremental facade: collect assertions, then :meth:`check`.

    Each :meth:`check` call converts the current assertion set from scratch
    (the DPLL core is re-seeded per query); :meth:`push`/:meth:`pop` manage
    assertion scopes Z3-style, which is how the synthesis session keeps the
    static problem clauses asserted while swapping the threshold stealth
    clauses between counterexample-guided rounds.
    """

    def __init__(self, theory_check: str = "eager", time_budget: float | None = None):
        self._assertions: list[Formula] = []
        self._scopes: list[int] = []
        self.theory_check = theory_check
        self.time_budget = time_budget

    # ------------------------------------------------------------------
    def add(self, *formulas: Formula) -> None:
        """Assert one or more formulas (conjunction semantics)."""
        for formula in formulas:
            if not isinstance(formula, Formula):
                raise ValidationError(f"{formula!r} is not a Formula")
            self._assertions.append(formula)

    def assertions(self) -> list[Formula]:
        """The current assertion list."""
        return list(self._assertions)

    def reset(self) -> None:
        """Drop all assertions and scopes."""
        self._assertions = []
        self._scopes = []

    # ------------------------------------------------------------------
    def push(self) -> None:
        """Open an assertion scope; a later :meth:`pop` drops everything added since."""
        self._scopes.append(len(self._assertions))

    def pop(self) -> None:
        """Close the innermost scope, retracting its assertions."""
        if not self._scopes:
            raise ValidationError("pop() without a matching push()")
        del self._assertions[self._scopes.pop():]

    @property
    def scope_depth(self) -> int:
        """Number of open assertion scopes."""
        return len(self._scopes)

    # ------------------------------------------------------------------
    def check(self, time_budget: float | None = None) -> SolverResult:
        """Decide satisfiability of the conjunction of all assertions."""
        budget = time_budget if time_budget is not None else self.time_budget
        cnf = to_cnf(self._assertions)
        dpll = DPLLSolver(cnf, theory_check=self.theory_check, time_budget=budget)
        result = dpll.solve()

        real_model: dict[str, float] = {}
        bool_model: dict[str, bool] = {}
        if result.status is SolveStatus.SAT:
            real_model = dict(result.theory_model)
            # Any real variable not constrained by asserted atoms defaults to 0.
            for formula in self._assertions:
                for name in formula.real_vars():
                    real_model.setdefault(name, 0.0)
            for variable, name in cnf.bool_name_of_variable.items():
                if variable in result.bool_assignment:
                    bool_model[name] = result.bool_assignment[variable]
        statistics = {
            "decisions": result.decisions,
            "propagations": result.propagations,
            "theory_checks": result.theory_checks,
            "elapsed": result.elapsed,
            "clauses": len(cnf.clauses),
            "variables": cnf.variable_count,
        }
        return SolverResult(
            status=result.status,
            real_model=real_model,
            bool_model=bool_model,
            statistics=statistics,
        )
