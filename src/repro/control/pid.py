"""Discrete PID controller.

Included for the SISO example systems (DC motor, cruise control) so the
library can demonstrate that the synthesis machinery is controller-agnostic:
any implementation that produces ``u_k`` from measurements can be wrapped,
not only the state-feedback law of the main case study.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import ValidationError, check_positive


@dataclass
class DiscretePID:
    """Textbook positional PID with clamping anti-windup.

    ``u_k = Kp e_k + Ki * dt * sum(e) + Kd * (e_k - e_{k-1}) / dt``

    Attributes
    ----------
    kp, ki, kd:
        Proportional, integral and derivative gains.
    dt:
        Sampling period in seconds.
    output_limits:
        Optional ``(low, high)`` saturation; the integrator is clamped when
        the output saturates (anti-windup).
    """

    kp: float
    ki: float = 0.0
    kd: float = 0.0
    dt: float = 1.0
    output_limits: tuple[float, float] | None = None
    _integral: float = field(default=0.0, repr=False)
    _previous_error: float | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        check_positive("dt", self.dt)
        if self.output_limits is not None:
            low, high = self.output_limits
            if low >= high:
                raise ValidationError("output_limits must satisfy low < high")

    def reset(self) -> None:
        """Clear the integrator and derivative memory."""
        self._integral = 0.0
        self._previous_error = None

    def step(self, error: float) -> float:
        """Compute the control action for the current tracking error."""
        error = float(error)
        derivative = 0.0
        if self._previous_error is not None:
            derivative = (error - self._previous_error) / self.dt
        candidate_integral = self._integral + error * self.dt
        output = self.kp * error + self.ki * candidate_integral + self.kd * derivative

        if self.output_limits is not None:
            low, high = self.output_limits
            saturated = min(max(output, low), high)
            if saturated == output:
                self._integral = candidate_integral
            # When saturated, keep the old integral (clamping anti-windup).
            output = saturated
        else:
            self._integral = candidate_integral

        self._previous_error = error
        return output

    def run(self, errors) -> list[float]:
        """Apply :meth:`step` over a sequence of errors, returning all outputs."""
        return [self.step(e) for e in errors]
