"""Discrete-time linear-quadratic regulator design.

The paper's controller is a static state-feedback law ``u_k = -K xhat_k``;
this module computes the gain ``K`` as the infinite-horizon LQR solution of
the plant, which is the standard choice for the vehicle-dynamics case studies
the paper builds on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lti.model import StateSpace
from repro.utils.linalg import dare
from repro.utils.validation import ValidationError, check_symmetric


def dlqr(
    A: np.ndarray,
    B: np.ndarray,
    Q: np.ndarray,
    R: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Infinite-horizon discrete LQR.

    Returns the gain ``K`` (such that ``u = -K x`` is optimal) and the Riccati
    solution ``P`` of

    ``P = A^T P A - A^T P B (R + B^T P B)^{-1} B^T P A + Q``.
    """
    A = np.asarray(A, dtype=float)
    B = np.atleast_2d(np.asarray(B, dtype=float))
    Q = check_symmetric("Q", Q)
    R = check_symmetric("R", R)
    P = dare(A, B, Q, R)
    K = np.linalg.solve(R + B.T @ P @ B, B.T @ P @ A)
    return K, P


def lqr_gain(
    plant: StateSpace,
    Q: np.ndarray | None = None,
    R: np.ndarray | None = None,
) -> np.ndarray:
    """LQR gain for a discrete plant with identity default weights."""
    if not plant.is_discrete:
        raise ValidationError("lqr_gain requires a discrete-time plant")
    if Q is None:
        Q = np.eye(plant.n_states)
    if R is None:
        R = np.eye(plant.n_inputs)
    K, _ = dlqr(plant.A, plant.B, Q, R)
    return K


@dataclass(frozen=True)
class LQRDesign:
    """Complete record of an LQR design for reporting and ablation studies.

    Attributes
    ----------
    K:
        Optimal state-feedback gain.
    P:
        Riccati solution (cost-to-go matrix).
    Q, R:
        Weights used for the design.
    closed_loop_eigenvalues:
        Eigenvalues of ``A - B K``.
    """

    K: np.ndarray
    P: np.ndarray
    Q: np.ndarray
    R: np.ndarray
    closed_loop_eigenvalues: np.ndarray

    @classmethod
    def design(
        cls,
        plant: StateSpace,
        Q: np.ndarray | None = None,
        R: np.ndarray | None = None,
    ) -> "LQRDesign":
        """Run the design and record the resulting closed-loop eigenvalues."""
        if Q is None:
            Q = np.eye(plant.n_states)
        if R is None:
            R = np.eye(plant.n_inputs)
        Q = check_symmetric("Q", Q)
        R = check_symmetric("R", R)
        K, P = dlqr(plant.A, plant.B, Q, R)
        eigenvalues = np.linalg.eigvals(plant.A - plant.B @ K)
        return cls(K=K, P=P, Q=Q, R=R, closed_loop_eigenvalues=eigenvalues)

    @property
    def is_stabilizing(self) -> bool:
        """True when the resulting closed loop is Schur stable."""
        return bool(np.all(np.abs(self.closed_loop_eigenvalues) < 1.0))

    def cost(self, x0: np.ndarray) -> float:
        """Optimal infinite-horizon cost ``x0^T P x0`` from initial state ``x0``."""
        x0 = np.asarray(x0, dtype=float).reshape(-1)
        return float(x0 @ self.P @ x0)
