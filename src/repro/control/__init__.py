"""Controller design substrate.

Provides the state-feedback design tools used to close the loop around the
LTI plants: LQR (via the discrete algebraic Riccati equation), pole
placement, a discrete PID for the SISO examples, and reference-tracking
feedforward gains.
"""

from repro.control.lqr import lqr_gain, dlqr, LQRDesign
from repro.control.pole_placement import place_poles_gain, deadbeat_gain
from repro.control.pid import DiscretePID
from repro.control.tracking import feedforward_gain, tracking_state_target

__all__ = [
    "lqr_gain",
    "dlqr",
    "LQRDesign",
    "place_poles_gain",
    "deadbeat_gain",
    "DiscretePID",
    "feedforward_gain",
    "tracking_state_target",
]
