"""Reference tracking helpers.

The case studies track a non-zero set point (for example a desired yaw rate).
Two standard constructions are provided:

* :func:`feedforward_gain` — the static feedforward ``N`` in
  ``u = -K x + N r`` that makes the closed-loop DC gain from ``r`` to ``y``
  equal to the identity.
* :func:`tracking_state_target` — the steady-state pair ``(x_ss, u_ss)``
  solving ``x_ss = A x_ss + B u_ss``, ``y_des = C x_ss + D u_ss``, used to
  express performance criteria in state space (the paper's ``x_des``).
"""

from __future__ import annotations

import numpy as np

from repro.lti.model import StateSpace
from repro.utils.validation import ValidationError


def feedforward_gain(plant: StateSpace, K: np.ndarray) -> np.ndarray:
    """Static feedforward gain ``N`` for unity DC tracking.

    With the control law ``u = -K x + N r`` the closed loop is
    ``x_{k+1} = (A - B K) x_k + B N r`` with output
    ``y = (C - D K) x + D N r``, so the DC gain from ``r`` to ``y`` is
    ``G = (C - D K)(I - A + B K)^{-1} B + D`` and the feedforward is its
    (pseudo-)inverse ``N = G^{+}``.
    """
    K = np.atleast_2d(np.asarray(K, dtype=float))
    n = plant.n_states
    closed = plant.A - plant.B @ K
    try:
        core = np.linalg.solve(np.eye(n) - closed, plant.B)
    except np.linalg.LinAlgError as exc:
        raise ValidationError(
            "closed loop has a pole at z = 1; cannot compute DC feedforward"
        ) from exc
    dc = (plant.C - plant.D @ K) @ core + plant.D
    return np.linalg.pinv(dc)


def tracking_state_target(
    plant: StateSpace,
    y_desired: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Steady-state ``(x_ss, u_ss)`` achieving output ``y_desired``.

    Solves the linear system

    ``[[A - I, B], [C, D]] [x_ss; u_ss] = [0; y_des]``

    in the least-squares sense, which also covers plants with more outputs
    than inputs (the extra outputs are matched as closely as possible).
    """
    y_desired = np.asarray(y_desired, dtype=float).reshape(-1)
    if y_desired.size != plant.n_outputs:
        raise ValidationError(
            f"y_desired must have length {plant.n_outputs}, got {y_desired.size}"
        )
    n, p = plant.n_states, plant.n_inputs
    upper = np.hstack([plant.A - np.eye(n), plant.B])
    lower = np.hstack([plant.C, plant.D])
    lhs = np.vstack([upper, lower])
    rhs = np.concatenate([np.zeros(n), y_desired])
    solution, *_ = np.linalg.lstsq(lhs, rhs, rcond=None)
    x_ss = solution[:n]
    u_ss = solution[n : n + p]
    return x_ss, u_ss
