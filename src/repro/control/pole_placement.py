"""State-feedback design by pole placement.

Wraps :func:`scipy.signal.place_poles` for the multi-input case and provides
an Ackermann-formula implementation for single-input plants, plus the
deadbeat design (all closed-loop poles at the origin) that is occasionally
used as an aggressive baseline controller in the examples.
"""

from __future__ import annotations

import numpy as np
from scipy import signal

from repro.lti.model import StateSpace
from repro.utils.linalg import controllability_matrix, is_controllable
from repro.utils.validation import ValidationError


def ackermann_gain(A: np.ndarray, b: np.ndarray, poles) -> np.ndarray:
    """Single-input pole placement via Ackermann's formula.

    Parameters
    ----------
    A:
        ``n x n`` state matrix.
    b:
        ``n x 1`` (or length-``n``) input vector.
    poles:
        Desired closed-loop eigenvalues (length ``n``; complex poles must come
        in conjugate pairs so the characteristic polynomial is real).
    """
    A = np.asarray(A, dtype=float)
    b = np.asarray(b, dtype=float).reshape(-1, 1)
    n = A.shape[0]
    poles = np.asarray(poles, dtype=complex).reshape(-1)
    if poles.size != n:
        raise ValidationError(f"need exactly {n} poles, got {poles.size}")
    if not is_controllable(A, b):
        raise ValidationError("pair (A, b) is not controllable")
    # Desired characteristic polynomial coefficients (monic).
    coefficients = np.poly(poles)
    if np.max(np.abs(coefficients.imag)) > 1e-9:
        raise ValidationError("poles must be closed under complex conjugation")
    coefficients = coefficients.real
    # phi(A) = A^n + c1 A^{n-1} + ... + cn I
    phi = np.zeros_like(A)
    for power, coefficient in enumerate(coefficients):
        phi = phi + coefficient * np.linalg.matrix_power(A, n - power)
    ctrb = controllability_matrix(A, b)
    selector = np.zeros((1, n))
    selector[0, -1] = 1.0
    K = selector @ np.linalg.solve(ctrb, phi)
    return K


def place_poles_gain(plant: StateSpace, poles) -> np.ndarray:
    """Feedback gain ``K`` such that ``A - B K`` has eigenvalues ``poles``.

    Uses Ackermann's formula for single-input plants and scipy's robust
    pole-placement algorithm otherwise.
    """
    poles = np.asarray(poles, dtype=complex).reshape(-1)
    if poles.size != plant.n_states:
        raise ValidationError(
            f"need exactly {plant.n_states} poles, got {poles.size}"
        )
    if plant.n_inputs == 1:
        return ackermann_gain(plant.A, plant.B, poles)
    result = signal.place_poles(plant.A, plant.B, poles)
    return result.gain_matrix


def deadbeat_gain(plant: StateSpace) -> np.ndarray:
    """Deadbeat design: every closed-loop eigenvalue at the origin.

    The closed loop reaches the origin in at most ``n`` samples from any
    initial condition (in the absence of noise).  Scipy's pole placement
    cannot place coincident poles, so multi-input plants get poles spread in
    a tiny disc around the origin instead.
    """
    n = plant.n_states
    if plant.n_inputs == 1:
        return ackermann_gain(plant.A, plant.B, np.zeros(n))
    radius = 1e-3
    poles = radius * np.exp(2j * np.pi * np.arange(n) / max(n, 1))
    # Keep poles conjugate-closed for odd n by forcing one real pole.
    poles = np.asarray(sorted(poles, key=lambda z: z.real), dtype=complex)
    poles[0] = radius
    result = signal.place_poles(plant.A, plant.B, poles)
    return result.gain_matrix
