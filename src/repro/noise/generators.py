"""Batch noise-sequence generation for Monte-Carlo studies."""

from __future__ import annotations

import numpy as np

from repro.noise.models import NoiseModel
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import check_positive


def noise_matrix(model: NoiseModel, horizon: int, rng=None) -> np.ndarray:
    """One ``(horizon, dimension)`` noise realisation from ``model``."""
    horizon = int(check_positive("horizon", horizon))
    return model.sample(horizon, ensure_rng(rng))


def noise_vector_batch(
    model: NoiseModel,
    horizon: int,
    count: int,
    seed=None,
) -> np.ndarray:
    """Draw ``count`` independent noise realisations.

    Returns an array of shape ``(count, horizon, dimension)``; each
    realisation uses an independent child RNG so the batch is reproducible
    and order-independent.
    """
    horizon = int(check_positive("horizon", horizon))
    count = int(check_positive("count", count))
    rngs = spawn_rngs(seed, count)
    batch = np.zeros((count, horizon, model.dimension))
    for index, child in enumerate(rngs):
        batch[index] = model.sample(horizon, child)
    return batch
