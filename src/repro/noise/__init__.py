"""Noise models and generators.

The false-alarm-rate study of the paper draws "1000 random measurement noise
vectors of bounded length with each value sampled from a suitably small
range"; this package provides those bounded generators alongside the standard
Gaussian and truncated-Gaussian models used during simulation.
"""

from repro.noise.models import (
    NoiseModel,
    GaussianNoise,
    BoundedUniformNoise,
    TruncatedGaussianNoise,
    ZeroNoise,
)
from repro.noise.generators import noise_matrix, noise_vector_batch

__all__ = [
    "NoiseModel",
    "GaussianNoise",
    "BoundedUniformNoise",
    "TruncatedGaussianNoise",
    "ZeroNoise",
    "noise_matrix",
    "noise_vector_batch",
]
