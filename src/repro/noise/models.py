"""Stochastic noise models with a common sampling interface."""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.registry import NOISE_MODELS
from repro.utils.rng import ensure_rng
from repro.utils.validation import ValidationError, check_symmetric


class NoiseModel(abc.ABC):
    """Abstract per-sample noise model over a fixed-dimension vector."""

    @property
    @abc.abstractmethod
    def dimension(self) -> int:
        """Dimension of each sample."""

    @abc.abstractmethod
    def sample(self, horizon: int, rng=None) -> np.ndarray:
        """Draw a ``(horizon, dimension)`` block of noise samples."""

    def sample_one(self, rng=None) -> np.ndarray:
        """Draw a single sample (length ``dimension``)."""
        return self.sample(1, rng)[0]


@NOISE_MODELS.register("zero")
@dataclass(frozen=True)
class ZeroNoise(NoiseModel):
    """Deterministic zero noise (placeholder for noiseless channels)."""

    size: int

    @property
    def dimension(self) -> int:
        return self.size

    def sample(self, horizon: int, rng=None) -> np.ndarray:
        return np.zeros((int(horizon), self.size))


@NOISE_MODELS.register("gaussian")
@dataclass(frozen=True)
class GaussianNoise(NoiseModel):
    """Zero-mean multivariate Gaussian noise with covariance ``covariance``."""

    covariance: np.ndarray

    def __post_init__(self) -> None:
        covariance = check_symmetric("covariance", self.covariance)
        object.__setattr__(self, "covariance", covariance)

    @property
    def dimension(self) -> int:
        return self.covariance.shape[0]

    def sample(self, horizon: int, rng=None) -> np.ndarray:
        rng = ensure_rng(rng)
        return rng.multivariate_normal(
            np.zeros(self.dimension), self.covariance, size=int(horizon)
        )

    @classmethod
    def from_std(cls, std) -> "GaussianNoise":
        """Build from per-channel standard deviations (diagonal covariance)."""
        std = np.asarray(std, dtype=float).reshape(-1)
        return cls(covariance=np.diag(std**2))


@NOISE_MODELS.register("bounded-uniform")
@dataclass(frozen=True)
class BoundedUniformNoise(NoiseModel):
    """Uniform noise on ``[-bound_i, +bound_i]`` per channel.

    This is the model used for the paper's FAR experiment: "each value sampled
    from a suitably small range such that pfc is maintained".
    """

    bounds: np.ndarray

    def __post_init__(self) -> None:
        bounds = np.asarray(self.bounds, dtype=float).reshape(-1)
        if np.any(bounds < 0):
            raise ValidationError("bounds must be non-negative")
        object.__setattr__(self, "bounds", bounds)

    @property
    def dimension(self) -> int:
        return self.bounds.size

    def sample(self, horizon: int, rng=None) -> np.ndarray:
        rng = ensure_rng(rng)
        uniform = rng.uniform(-1.0, 1.0, size=(int(horizon), self.dimension))
        return uniform * self.bounds


@NOISE_MODELS.register("truncated-gaussian")
@dataclass(frozen=True)
class TruncatedGaussianNoise(NoiseModel):
    """Diagonal Gaussian noise clipped to ``[-bound_i, +bound_i]`` per channel.

    Keeps the Gaussian shape of realistic sensor noise while providing the
    hard bound that formal encodings need (the solver assumes noise never
    exceeds the bound).
    """

    std: np.ndarray
    bounds: np.ndarray

    def __post_init__(self) -> None:
        std = np.asarray(self.std, dtype=float).reshape(-1)
        bounds = np.asarray(self.bounds, dtype=float).reshape(-1)
        if std.size != bounds.size:
            raise ValidationError("std and bounds must have the same length")
        if np.any(std < 0) or np.any(bounds < 0):
            raise ValidationError("std and bounds must be non-negative")
        object.__setattr__(self, "std", std)
        object.__setattr__(self, "bounds", bounds)

    @property
    def dimension(self) -> int:
        return self.std.size

    def sample(self, horizon: int, rng=None) -> np.ndarray:
        rng = ensure_rng(rng)
        raw = rng.normal(0.0, 1.0, size=(int(horizon), self.dimension)) * self.std
        return np.clip(raw, -self.bounds, self.bounds)
