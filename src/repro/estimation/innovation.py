"""Innovation (residue) statistics.

Under no attack and Gaussian noise, the Kalman innovation ``z_k`` is zero-mean
with covariance ``S = C P C^T + R``; the normalised innovation squared
``z_k^T S^{-1} z_k`` is chi-square distributed with ``m`` degrees of freedom.
These quantities feed the chi-square baseline detector and the false-alarm
analysis.
"""

from __future__ import annotations

import numpy as np

from repro.lti.model import StateSpace
from repro.utils.validation import ValidationError, check_symmetric


def innovation_covariance(
    plant: StateSpace,
    prediction_covariance: np.ndarray,
    R_v: np.ndarray | None = None,
) -> np.ndarray:
    """Innovation covariance ``S = C P C^T + R`` of a steady-state Kalman filter."""
    P = check_symmetric("prediction_covariance", prediction_covariance)
    if R_v is None:
        R_v = plant.R_v if plant.R_v is not None else np.zeros((plant.n_outputs,) * 2)
    R_v = check_symmetric("R_v", R_v)
    S = plant.C @ P @ plant.C.T + R_v
    return 0.5 * (S + S.T)


def normalized_innovation_squared(
    residues: np.ndarray,
    innovation_cov: np.ndarray,
) -> np.ndarray:
    """Per-sample statistic ``g_k = z_k^T S^{-1} z_k`` for a residue sequence.

    Parameters
    ----------
    residues:
        Array of shape ``(T, m)`` (a single residue vector is also accepted).
    innovation_cov:
        The ``m x m`` innovation covariance ``S``.

    Returns
    -------
    numpy.ndarray
        Length-``T`` array of chi-square statistics.
    """
    residues = np.atleast_2d(np.asarray(residues, dtype=float))
    S = check_symmetric("innovation_cov", innovation_cov)
    if residues.shape[1] != S.shape[0]:
        raise ValidationError(
            f"residue dimension {residues.shape[1]} does not match covariance size {S.shape[0]}"
        )
    try:
        S_inv = np.linalg.inv(S)
    except np.linalg.LinAlgError as exc:
        raise ValidationError("innovation covariance is singular") from exc
    return np.einsum("ki,ij,kj->k", residues, S_inv, residues)
