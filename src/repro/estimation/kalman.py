"""Kalman filtering for discrete LTI plants.

Two flavours are provided:

* :func:`steady_state_kalman` / :class:`KalmanFilter` — the steady-state
  (constant-gain) filter obtained from the filtering DARE.  This is the ``L``
  used by the paper's estimator ``xhat_{k+1} = A xhat_k + B u_k + L z_k``.
* :class:`TimeVaryingKalmanFilter` — the classical recursive predict/update
  filter, useful for validating the steady-state gain and for systems that
  have not yet converged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lti.model import StateSpace
from repro.utils.linalg import dare, is_positive_definite
from repro.utils.validation import ValidationError, check_symmetric


def _noise_covariances(
    plant: StateSpace,
    Q_w: np.ndarray | None,
    R_v: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Resolve noise covariances from explicit arguments or the plant model."""
    n, m = plant.n_states, plant.n_outputs
    if Q_w is None:
        Q_w = plant.Q_w if plant.Q_w is not None else np.eye(n) * 1e-4
    if R_v is None:
        R_v = plant.R_v if plant.R_v is not None else np.eye(m) * 1e-4
    Q_w = check_symmetric("Q_w", Q_w)
    R_v = check_symmetric("R_v", R_v)
    if not is_positive_definite(R_v):
        raise ValidationError("measurement noise covariance R_v must be positive definite")
    return Q_w, R_v


def steady_state_kalman(
    plant: StateSpace,
    Q_w: np.ndarray | None = None,
    R_v: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Compute the steady-state Kalman gain and error covariance.

    Solves the filtering DARE ``P = A P A^T - A P C^T (C P C^T + R)^{-1} C P A^T + Q``
    (by duality with the control DARE) and returns the predictor-form gain

    ``L = A P C^T (C P C^T + R)^{-1}``

    so that the estimator update matches the paper:
    ``xhat_{k+1} = A xhat_k + B u_k + L (y_k - C xhat_k - D u_k)``.

    Returns
    -------
    (L, P):
        Kalman gain ``(n x m)`` and steady-state prediction error covariance
        ``(n x n)``.
    """
    Q_w, R_v = _noise_covariances(plant, Q_w, R_v)
    # Duality: filtering DARE for (A, C, Q, R) is the control DARE for (A^T, C^T, Q, R).
    P = dare(plant.A.T, plant.C.T, Q_w, R_v)
    innovation_cov = plant.C @ P @ plant.C.T + R_v
    L = plant.A @ P @ plant.C.T @ np.linalg.inv(innovation_cov)
    return L, P


def kalman_gain(
    plant: StateSpace,
    Q_w: np.ndarray | None = None,
    R_v: np.ndarray | None = None,
) -> np.ndarray:
    """Convenience wrapper returning only the steady-state Kalman gain ``L``."""
    L, _ = steady_state_kalman(plant, Q_w, R_v)
    return L


@dataclass
class KalmanFilter:
    """Steady-state (constant-gain) Kalman filter in predictor form.

    The filter maintains the one-step-ahead prediction ``xhat_k`` and, on each
    call to :meth:`step`, consumes the measurement ``y_k`` and the input
    ``u_k`` applied during sample ``k``:

    ``z_k = y_k - C xhat_k - D u_k``,
    ``xhat_{k+1} = A xhat_k + B u_k + L z_k``.
    """

    plant: StateSpace
    L: np.ndarray
    state: np.ndarray | None = None

    def __post_init__(self) -> None:
        n, m = self.plant.n_states, self.plant.n_outputs
        self.L = np.asarray(self.L, dtype=float).reshape(n, m)
        if self.state is None:
            self.state = np.zeros(n)
        else:
            self.state = np.asarray(self.state, dtype=float).reshape(-1)
            if self.state.size != n:
                raise ValidationError(f"initial state must have length {n}")

    @classmethod
    def design(
        cls,
        plant: StateSpace,
        Q_w: np.ndarray | None = None,
        R_v: np.ndarray | None = None,
    ) -> "KalmanFilter":
        """Design the steady-state filter for ``plant`` from noise covariances."""
        L, _ = steady_state_kalman(plant, Q_w, R_v)
        return cls(plant=plant, L=L)

    def reset(self, state: np.ndarray | None = None) -> None:
        """Reset the internal estimate (zero by default)."""
        n = self.plant.n_states
        self.state = np.zeros(n) if state is None else np.asarray(state, dtype=float).reshape(n)

    def predict_output(self, u: np.ndarray) -> np.ndarray:
        """Predicted measurement ``C xhat_k + D u_k`` for the current estimate."""
        return self.plant.output(self.state, u)

    def step(self, y: np.ndarray, u: np.ndarray) -> np.ndarray:
        """Process one sample; returns the residue ``z_k`` and advances the estimate."""
        y = np.asarray(y, dtype=float).reshape(-1)
        residue = y - self.predict_output(u)
        self.state = self.plant.step_state(self.state, u) + self.L @ residue
        return residue

    def run(self, measurements: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """Filter a whole measurement sequence; returns the ``(T, m)`` residue array."""
        measurements = np.atleast_2d(np.asarray(measurements, dtype=float))
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        if measurements.shape[0] != inputs.shape[0]:
            raise ValidationError("measurements and inputs must have the same length")
        residues = np.zeros((measurements.shape[0], self.plant.n_outputs))
        for k in range(measurements.shape[0]):
            residues[k] = self.step(measurements[k], inputs[k])
        return residues


@dataclass
class TimeVaryingKalmanFilter:
    """Classical recursive Kalman filter with time-varying gain.

    Used mainly to validate that the steady-state gain of
    :func:`steady_state_kalman` is the limit of the recursive gains, and for
    plants whose covariance has not yet converged at the start of an episode.
    """

    plant: StateSpace
    Q_w: np.ndarray | None = None
    R_v: np.ndarray | None = None
    state: np.ndarray | None = None
    covariance: np.ndarray | None = None

    def __post_init__(self) -> None:
        n = self.plant.n_states
        self.Q_w, self.R_v = _noise_covariances(self.plant, self.Q_w, self.R_v)
        if self.state is None:
            self.state = np.zeros(n)
        else:
            self.state = np.asarray(self.state, dtype=float).reshape(n)
        if self.covariance is None:
            self.covariance = np.eye(n)
        else:
            self.covariance = check_symmetric("covariance", self.covariance)

    def step(self, y: np.ndarray, u: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Process one sample.

        Returns
        -------
        (residue, gain):
            The innovation ``z_k`` and the gain ``L_k`` used at this step
            (in predictor form, comparable with the steady-state ``L``).
        """
        plant = self.plant
        y = np.asarray(y, dtype=float).reshape(-1)
        P = self.covariance
        innovation_cov = plant.C @ P @ plant.C.T + self.R_v
        gain = plant.A @ P @ plant.C.T @ np.linalg.inv(innovation_cov)
        residue = y - plant.output(self.state, u)
        self.state = plant.step_state(self.state, u) + gain @ residue
        self.covariance = (
            plant.A @ P @ plant.A.T
            - gain @ plant.C @ P @ plant.A.T
            + self.Q_w
        )
        self.covariance = 0.5 * (self.covariance + self.covariance.T)
        return residue, gain

    def run(self, measurements: np.ndarray, inputs: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        """Filter a sequence; returns residues and the list of per-step gains."""
        measurements = np.atleast_2d(np.asarray(measurements, dtype=float))
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        residues = np.zeros((measurements.shape[0], self.plant.n_outputs))
        gains = []
        for k in range(measurements.shape[0]):
            residues[k], gain = self.step(measurements[k], inputs[k])
            gains.append(gain)
        return residues, gains
