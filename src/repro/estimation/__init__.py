"""State estimation substrate: Kalman filters and Luenberger observers.

The paper's detection architecture compares measured outputs against the
predictions of a steady-state Kalman filter; this package provides that
filter (gain computed from the discrete algebraic Riccati equation), a
time-varying Kalman filter for reference, a pole-placement Luenberger
observer, and innovation statistics used by the chi-square baseline detector.
"""

from repro.estimation.kalman import (
    kalman_gain,
    steady_state_kalman,
    KalmanFilter,
    TimeVaryingKalmanFilter,
)
from repro.estimation.luenberger import luenberger_gain, LuenbergerObserver
from repro.estimation.innovation import (
    innovation_covariance,
    normalized_innovation_squared,
)

__all__ = [
    "kalman_gain",
    "steady_state_kalman",
    "KalmanFilter",
    "TimeVaryingKalmanFilter",
    "luenberger_gain",
    "LuenbergerObserver",
    "innovation_covariance",
    "normalized_innovation_squared",
]
