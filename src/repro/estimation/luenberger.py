"""Luenberger observer design by pole placement.

Provides an alternative to the Kalman gain for plants without a meaningful
noise model: the observer gain ``L`` is chosen so that the error dynamics
``A - L C`` have prescribed eigenvalues.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal

from repro.lti.model import StateSpace
from repro.utils.linalg import is_observable
from repro.utils.validation import ValidationError


def luenberger_gain(plant: StateSpace, poles) -> np.ndarray:
    """Observer gain placing the eigenvalues of ``A - L C`` at ``poles``.

    Uses the duality with state-feedback pole placement: placing poles of
    ``A - L C`` is placing poles of ``A^T - C^T L^T``.
    """
    poles = np.asarray(poles, dtype=complex).reshape(-1)
    if poles.size != plant.n_states:
        raise ValidationError(
            f"need exactly {plant.n_states} observer poles, got {poles.size}"
        )
    if not is_observable(plant.A, plant.C):
        raise ValidationError("plant is not observable; cannot place observer poles")
    result = signal.place_poles(plant.A.T, plant.C.T, poles)
    return result.gain_matrix.T


@dataclass
class LuenbergerObserver:
    """Stateful Luenberger observer mirroring the Kalman predictor interface."""

    plant: StateSpace
    L: np.ndarray
    state: np.ndarray | None = None

    def __post_init__(self) -> None:
        n, m = self.plant.n_states, self.plant.n_outputs
        self.L = np.asarray(self.L, dtype=float).reshape(n, m)
        if self.state is None:
            self.state = np.zeros(n)
        else:
            self.state = np.asarray(self.state, dtype=float).reshape(n)

    @classmethod
    def design(cls, plant: StateSpace, poles) -> "LuenbergerObserver":
        """Design an observer with error-dynamics eigenvalues at ``poles``."""
        return cls(plant=plant, L=luenberger_gain(plant, poles))

    def reset(self, state: np.ndarray | None = None) -> None:
        """Reset the internal estimate (zero by default)."""
        n = self.plant.n_states
        self.state = np.zeros(n) if state is None else np.asarray(state, dtype=float).reshape(n)

    def step(self, y: np.ndarray, u: np.ndarray) -> np.ndarray:
        """Process one sample; returns the output residue and advances the estimate."""
        y = np.asarray(y, dtype=float).reshape(-1)
        residue = y - self.plant.output(self.state, u)
        self.state = self.plant.step_state(self.state, u) + self.L @ residue
        return residue
