"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments that lack the ``wheel`` package required by PEP 660 editable
builds (``pip install -e .`` then falls back to the legacy ``setup.py
develop`` path).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Formal synthesis of monitoring and detection systems for secure CPS "
        "implementations (DATE 2020 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23", "scipy>=1.9"],
    extras_require={
        # matplotlib backs the optional ExplorationReport.plot_front helper
        # (exercised headless in CI); the library runs without it.
        "dev": ["pytest", "pytest-benchmark", "ruff", "matplotlib"],
    },
)
